"""Per-query EXPLAIN: one structured cost record per answered query.

The paper's query bound ``O(log2(n*K) + k*log2 k)`` decomposes into
three structural phases — locate the angular region (binary descent),
materialize its K tuples, evaluate and partially sort — and the
aggregate counters of :class:`~repro.obs.metrics.MetricsRecorder` only
report those phases *summed over a run*.  :class:`QueryExplain` is the
per-query view: which region one query landed in, how deep the descent
went, how many tuples it scored against its ``k``, and how long each
phase took, captured by ``RankedJoinIndex.explain(preference, k)`` and
rendered by the SQL layer's ``EXPLAIN SELECT``.

Every quantity in a :class:`QueryExplain` that is also an aggregate
metric (descent depth, region size, tuples evaluated) is emitted through
the capturing :class:`ExplainRecorder` with *the same names and values*
the normal query path records, so an explained query and a plain query
are indistinguishable in a metrics snapshot — the property tests hold
the two views equal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import ContextManager, Mapping, Sequence

from .recorder import NULL_RECORDER, Recorder

__all__ = [
    "ExplainRecorder",
    "PhaseTiming",
    "QueryExplain",
    "RecordedEvent",
    "render_explain",
    "sort_comparison_budget",
]


@dataclass(frozen=True, slots=True)
class PhaseTiming:
    """Wall-clock seconds spent in one phase of a query."""

    name: str
    seconds: float


@dataclass(frozen=True, slots=True)
class RecordedEvent:
    """One recorder event captured while explaining a query."""

    verb: str
    name: str
    value: float
    attributes: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class QueryExplain:
    """The structural cost breakdown of one top-k query.

    ``descent_depth`` and ``tuples_evaluated`` equal the
    ``rji.descent_steps`` / ``rji.tuples_evaluated`` observations the
    metrics recorder makes for the same query; ``descent_path`` is the
    sequence of separating-point positions the binary search probed.
    ``sort_comparisons`` is the deterministic ``n * ceil(log2 n)``
    comparison budget of the partial sort (zero for the ordered
    variant, which stores pre-sorted compositions).  ``cache_hit`` marks
    a query served from the hot-region cache: the descent never ran, so
    ``descent_depth`` is 0 and ``descent_path`` is empty.  ``phases``
    carry measured wall time and are the only nondeterministic fields.
    """

    p1: float
    p2: float
    angle: float
    k: int
    k_bound: int
    variant: str
    n_regions: int
    region_id: int
    region_lo: float
    region_hi: float
    region_size: int
    descent_depth: int
    descent_path: tuple[int, ...]
    tuples_evaluated: int
    sort_comparisons: int
    n_results: int
    results: tuple = ()
    phases: tuple[PhaseTiming, ...] = ()
    cache_hit: bool = False
    #: The trace id active when the query was explained (the request
    #: context of :mod:`repro.obs.context`); ``None`` outside a request.
    trace_id: str | None = None

    def to_dict(self) -> dict:
        """JSON-ready dictionary (results included as ``[tid, score]``)."""
        return {
            "trace": self.trace_id,
            "preference": {"p1": self.p1, "p2": self.p2, "angle": self.angle},
            "k": self.k,
            "k_bound": self.k_bound,
            "variant": self.variant,
            "n_regions": self.n_regions,
            "region": {
                "id": self.region_id,
                "lo": self.region_lo,
                "hi": self.region_hi,
                "size": self.region_size,
            },
            "descent": {
                "depth": self.descent_depth,
                "path": list(self.descent_path),
                "cache_hit": self.cache_hit,
            },
            "tuples_evaluated": self.tuples_evaluated,
            "sort_comparisons": self.sort_comparisons,
            "n_results": self.n_results,
            "results": [[tid, score] for tid, score in self.results],
            "phases": {phase.name: phase.seconds for phase in self.phases},
        }


def sort_comparison_budget(n: int) -> int:
    """The deterministic ``n * ceil(log2 n)`` comparison estimate."""
    if n <= 1:
        return 0
    return n * math.ceil(math.log2(n))


class ExplainRecorder(Recorder):
    """A recorder that captures per-query :class:`QueryExplain` records.

    Wraps an inner recorder (the index's own, by default the null
    recorder) and *tees* every verb into it, so attaching an explain
    pass never hides events from an attached
    :class:`~repro.obs.metrics.MetricsRecorder` — the aggregate and
    per-query views stay consistent by construction.  Captured events
    land in :attr:`events`; finished records in :attr:`explains`.
    """

    enabled = True

    def __init__(self, inner: Recorder = NULL_RECORDER):
        self.inner = inner
        self.events: list[RecordedEvent] = []
        self.explains: list[QueryExplain] = []

    # -- the recorder protocol (tee + capture) ------------------------------

    def count(
        self,
        name: str,
        value: int = 1,
        attrs: Mapping[str, object] | None = None,
    ) -> None:
        self.events.append(
            RecordedEvent("count", name, value, dict(attrs) if attrs else {})
        )
        self.inner.count(name, value, attrs)

    def observe(
        self,
        name: str,
        value: float,
        attrs: Mapping[str, object] | None = None,
    ) -> None:
        self.events.append(
            RecordedEvent("observe", name, value, dict(attrs) if attrs else {})
        )
        self.inner.observe(name, value, attrs)

    def timer(self, name: str) -> ContextManager[None]:
        return self.inner.timer(name)

    def span(
        self, name: str, attrs: Mapping[str, object] | None = None
    ) -> ContextManager[None]:
        return self.inner.span(name, attrs)

    # -- capture ------------------------------------------------------------

    def record(self, explain: QueryExplain) -> None:
        """Attach one finished per-query record."""
        self.explains.append(explain)

    @property
    def last(self) -> QueryExplain | None:
        """The most recently captured record, if any."""
        return self.explains[-1] if self.explains else None


def _format_number(value: float) -> str:
    """Compact, deterministic float formatting for the renderer."""
    return f"{value:.6g}"


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.1f}us"


def render_explain(explain: QueryExplain, *, include_times: bool = False) -> str:
    """Deterministic text tree of one :class:`QueryExplain`.

    Without ``include_times`` the output depends only on the index
    structure and the query, so it is stable across runs and suitable
    for golden tests; with it, each phase line carries measured wall
    time.
    """
    fmt = _format_number
    lines = [
        f"explain: top-{explain.k} under preference "
        f"({fmt(explain.p1)}, {fmt(explain.p2)})"
        f"  [K={explain.k_bound}, variant={explain.variant}]"
        + (f"  [trace {explain.trace_id}]" if explain.trace_id else ""),
        f"├─ angle {fmt(explain.angle)} -> region {explain.region_id}"
        f" of {explain.n_regions}"
        f"  [{fmt(explain.region_lo)}, {fmt(explain.region_hi)})",
        f"├─ descent: depth {explain.descent_depth}, probes "
        + (
            "["
            + ", ".join(str(p) for p in explain.descent_path)
            + "]"
            if explain.descent_path
            else "[]"
        )
        + (" [hot-region cache hit]" if explain.cache_hit else ""),
        f"├─ materialize: {explain.region_size} tuples in region",
        f"├─ evaluate: {explain.tuples_evaluated} tuples scored, "
        f"~{explain.sort_comparisons} sort comparisons",
        f"└─ emit: {explain.n_results} results (k={explain.k})",
    ]
    if include_times and explain.phases:
        parts = ", ".join(
            f"{phase.name} {_format_seconds(phase.seconds)}"
            for phase in explain.phases
        )
        lines.append(f"   phases: {parts}")
    return "\n".join(lines)
