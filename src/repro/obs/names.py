"""The metric-name registry: one vocabulary for every recorder call.

Counter, series, and span names are part of the observability *API*: the
bench regression gate diffs them between runs, dashboards scrape them,
and a typo'd name silently forks a metric into two half-populated ones.
This module is the single source of truth — ``core``, ``storage``,
``sql`` and ``bench`` all emit from this vocabulary, rjilint rule RJI009
statically checks every ``recorder.count/observe/timer/span`` call site
against it, and ``python -m repro.obs lint-names`` runs the same check
stand-alone.

Names are dotted ``<subsystem>.<quantity>`` paths.  Operator-shaped
subsystems whose member set is open-ended (the SQL pipeline's per-
operator spans) register a *dynamic prefix* instead of enumerating every
member; a name is registered when it appears in one of the static sets
or extends a dynamic prefix.

The human glossary (what each name means) lives in
``docs/OBSERVABILITY.md``; keep the two in sync when adding names.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "ALL_NAMES",
    "COUNTERS",
    "DYNAMIC_PREFIXES",
    "MetricCall",
    "SERIES",
    "SPANS",
    "iter_metric_calls",
    "registered",
]

#: Monotone accumulating counters (``recorder.count``).
COUNTERS = frozenset(
    {
        # core build
        "dominance.input",
        "dominance.kept",
        "dominance.pruned",
        "sweep.pairs_considered",
        "sweep.events",
        "events.blocks",
        "sweep.tie_groups",
        "sweep.groups",
        "sweep.chunk_scans",
        "sweep.regions",
        # core query
        "rji.queries",
        "rji.explains",
        "rji.batch.calls",
        "rji.batch.tuples_evaluated",
        # hot-region descent cache (repro.core.hotcache)
        "rji.cache.hits",
        "rji.cache.misses",
        "rji.cache.evictions",
        # storage
        "pager.reads",
        "pager.writes",
        "buffer.hits",
        "buffer.misses",
        "disk.queries",
        # sql
        "sql.statements",
        # faults (repro.faults injection harness)
        "faults.injected",
        # resilient serving (repro.storage.resilient health gauges export
        # through the counter snapshot; see HealthSnapshot.to_snapshot)
        "resilience.state",
        "resilience.trips",
        "resilience.open_refusals",
        "resilience.disk_queries",
        "resilience.degraded",
        "resilience.retries",
        "resilience.timeouts",
        "resilience.corruption_errors",
        # analysis (rjilint whole-program index builds)
        "analysis.files_indexed",
        "analysis.cache_hits",
        "analysis.cache_misses",
        # network serving (repro.serve)
        "serve.connections",
        "serve.requests",
        "serve.responses",
        "serve.errors",
        "serve.shed",
        "serve.batches",
        "serve.bad_frames",
        "serve.untraced",
        "serve.flight_dumps",
        # durable write path (repro.storage.wal / repro.storage.durable)
        "wal.appends",
        "wal.commits",
        "wal.fsyncs",
        "wal.checkpoints",
        "wal.records_replayed",
        "wal.torn_tails",
        "wal.segments_created",
        "wal.segments_pruned",
        "delta.inserts",
        "delta.deletes",
        "delta.merged_queries",
        "compaction.runs",
    }
)

#: Per-operation sample series (``recorder.observe`` / ``recorder.timer``).
SERIES = frozenset(
    {
        "rji.descent_steps",
        "rji.regions_touched",
        "rji.tuples_evaluated",
        "rji.batch.queries",
        "rji.batch.groups",
        "disk.btree_nodes",
        "disk.pages_read",
        "disk.tuples_evaluated",
        "sql.rows_out",
        "serve.queue_depth",
        "serve.batch_size",
        "serve.latency",
        # buffered write-path entries outstanding after each write
        "delta.size",
    }
)

#: Nested trace spans (``recorder.span``); spans also observe their
#: duration as a series under the same name.
SPANS = frozenset(
    {
        "build",
        "build.dominating",
        "build.separating",
        "build.load",
        "sql.execute",
        # per-request serving spans; attrs carry the trace id(s)
        "serve.request",
        "serve.batch",
        # one delta→base merge (build + image save + checkpoint + prune)
        "compaction",
    }
)

#: Prefixes whose extensions are registered without enumeration.  The
#: SQL pipeline emits one span (and one ``.rows`` series) per operator,
#: and the operator set grows with the dialect.
DYNAMIC_PREFIXES = ("sql.op.",)

#: Every statically registered name.
ALL_NAMES = COUNTERS | SERIES | SPANS


def registered(name: str) -> bool:
    """Whether ``name`` is a registered metric name.

    True for members of the static sets and for any extension of a
    dynamic prefix (``sql.op.sort``, ``sql.op.sort.rows``, ...).
    """
    return name in ALL_NAMES or name.startswith(DYNAMIC_PREFIXES)


#: The recorder verbs whose first argument is a metric name.
_VERBS = frozenset({"count", "observe", "timer", "span"})


@dataclass(frozen=True, slots=True)
class MetricCall:
    """One ``<recorder>.<verb>(...)`` call site found in a module."""

    verb: str
    #: The literal metric name, or ``None`` when the first argument is
    #: not a string literal (forwarding helpers inside ``repro.obs``).
    name: str | None
    line: int
    col: int


def _mentions_recorder(node: ast.expr) -> bool:
    """Whether an attribute chain passes through a recorder-ish name."""
    while isinstance(node, ast.Attribute):
        if "recorder" in node.attr.lower():
            return True
        node = node.value
    return isinstance(node, ast.Name) and "recorder" in node.id.lower()


def iter_metric_calls(tree: ast.AST) -> Iterator[MetricCall]:
    """Yield every recorder verb call site in a parsed module.

    A call counts when it invokes ``count``/``observe``/``timer``/
    ``span`` through an attribute chain that mentions a recorder
    (``recorder.count(...)``, ``self.recorder.span(...)``,
    ``self._recorder.observe(...)``).  The emitted
    :class:`MetricCall` carries the literal first argument when there is
    one, so callers can check it against :func:`registered`.
    """
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _VERBS
            and _mentions_recorder(node.func.value)
        ):
            continue
        name: str | None = None
        if (
            node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            name = node.args[0].value
        yield MetricCall(
            verb=node.func.attr,
            name=name,
            line=node.lineno,
            col=node.col_offset,
        )
