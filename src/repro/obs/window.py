"""Rolling-window telemetry: "p99 over the last ten seconds", lock-safe.

Lifetime counters (:class:`~repro.obs.metrics.MetricsRecorder`, the
server's ``serve.*`` totals) answer *"how much, ever"*; an operator
watching a live server needs *"how fast, lately"*.  :class:`RollingWindow`
is a fixed ring of fixed-width time buckets: each recorded request lands
in the bucket of its arrival second, a bucket is lazily reset the first
time a new period reuses its slot, and a snapshot merges only the
buckets that fall inside the window — so old traffic ages out by
construction, with no background thread and no unbounded state.

Per bucket the window keeps an outcome tally (``ok`` / ``error`` /
``shed`` / ``timeout``) and up to ``max_samples`` latency samples; the
overflow is *counted* in ``dropped``, mirroring the exactness
certificate of :class:`~repro.obs.metrics.MetricsRecorder` — a snapshot
with ``dropped == 0`` has exact percentiles.

``qps`` divides by the full window span, not elapsed time, so a freshly
started window under-reports rather than spikes; the snapshot carries
``count`` and ``window_s`` so callers can second-guess it.

The clock is injectable (``clock=``) which makes bucket rotation and
expiry deterministic under test.  One lock guards all state (RJI011);
snapshots are consistent cuts.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..errors import ConstructionError

__all__ = ["OUTCOMES", "RollingWindow"]

#: The outcome classes one request resolves to.
OUTCOMES = ("ok", "error", "shed", "timeout")


class _Bucket:
    """One time-bucket slot of the ring; reset when its period is reused."""

    __slots__ = ("epoch", "count", "outcomes", "samples", "dropped")

    def __init__(self) -> None:
        self.epoch: int | None = None
        self.count = 0
        self.outcomes: dict[str, int] = {}
        self.samples: list[float] = []
        self.dropped = 0

    def reset(self, epoch: int) -> None:
        self.epoch = epoch
        self.count = 0
        self.outcomes = {}
        self.samples = []
        self.dropped = 0


def _nearest_rank(sorted_samples: list[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted samples (0.0 when empty)."""
    if not sorted_samples:
        return 0.0
    n = len(sorted_samples)
    rank = max(0, min(n - 1, round(q / 100.0 * n) - 1))
    return sorted_samples[rank]


class RollingWindow:
    """A lock-safe ring of time buckets over the last N seconds.

    ``bucket_s`` is the bucket width, ``n_buckets`` the ring length;
    the window spans ``bucket_s * n_buckets`` seconds.  ``record`` is
    O(1); ``snapshot`` sorts the retained samples of the live buckets.
    """

    def __init__(
        self,
        *,
        bucket_s: float = 1.0,
        n_buckets: int = 10,
        max_samples: int = 512,
        clock: Callable[[], float] = time.monotonic,
    ):
        if bucket_s <= 0:
            raise ConstructionError(
                f"bucket_s must be positive, got {bucket_s}"
            )
        if n_buckets < 2:
            raise ConstructionError(
                f"n_buckets must be >= 2, got {n_buckets}"
            )
        if max_samples < 1:
            raise ConstructionError(
                f"max_samples must be >= 1, got {max_samples}"
            )
        self.bucket_s = float(bucket_s)
        self.n_buckets = n_buckets
        self.max_samples = max_samples
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets = [_Bucket() for _ in range(n_buckets)]

    @property
    def window_s(self) -> float:
        """The total span the window covers, in seconds."""
        return self.bucket_s * self.n_buckets

    def _live_bucket(self, epoch: int) -> _Bucket:
        """The (lazily reset) bucket for ``epoch``; caller holds the lock."""
        bucket = self._buckets[epoch % self.n_buckets]
        if bucket.epoch != epoch:
            bucket.reset(epoch)
        return bucket

    def record(self, latency_s: float, outcome: str = "ok") -> None:
        """Record one finished request with its end-to-end latency."""
        if outcome not in OUTCOMES:
            raise ConstructionError(
                f"unknown outcome {outcome!r}; expected one of {OUTCOMES}"
            )
        epoch = int(self._clock() // self.bucket_s)
        with self._lock:
            bucket = self._live_bucket(epoch)
            bucket.count += 1
            bucket.outcomes[outcome] = bucket.outcomes.get(outcome, 0) + 1
            if len(bucket.samples) < self.max_samples:
                bucket.samples.append(latency_s)
            else:
                bucket.dropped += 1

    def snapshot(self) -> dict:
        """A JSON-ready consistent view over the live buckets.

        ``p50_s`` / ``p99_s`` are nearest-rank over the retained
        samples — exact iff ``dropped`` is 0.  ``qps`` is the window
        count over the full window span.  Rates are fractions of
        ``count`` (0.0 for an empty window).
        """
        now = self._clock()
        epoch = int(now // self.bucket_s)
        oldest = epoch - self.n_buckets + 1
        samples: list[float] = []
        outcomes = {name: 0 for name in OUTCOMES}
        count = 0
        dropped = 0
        with self._lock:
            for bucket in self._buckets:
                if bucket.epoch is None or not (
                    oldest <= bucket.epoch <= epoch
                ):
                    continue
                count += bucket.count
                dropped += bucket.dropped
                samples.extend(bucket.samples)
                for name, n in bucket.outcomes.items():
                    outcomes[name] = outcomes.get(name, 0) + n
        samples.sort()
        return {
            "window_s": self.window_s,
            "bucket_s": self.bucket_s,
            "count": count,
            "qps": count / self.window_s,
            "p50_s": _nearest_rank(samples, 50.0),
            "p99_s": _nearest_rank(samples, 99.0),
            "max_s": samples[-1] if samples else 0.0,
            "dropped": dropped,
            "outcomes": outcomes,
            "ok_rate": outcomes["ok"] / count if count else 0.0,
            "error_rate": outcomes["error"] / count if count else 0.0,
            "shed_rate": outcomes["shed"] / count if count else 0.0,
            "timeout_rate": outcomes["timeout"] / count if count else 0.0,
        }

    def clear(self) -> None:
        """Forget all buckets (the window restarts empty)."""
        with self._lock:
            for bucket in self._buckets:
                bucket.epoch = None
