"""Span-style tracing: nested, named timings of build and query phases.

A span is one timed, named stretch of work; spans nest (a ``build``
span contains ``build.dominating``, ``build.separating`` and
``build.load`` children), and the completed records reconstruct the
phase breakdown of Figure 14 without any bespoke timing code at the
call sites.  Spans optionally carry structured *attributes* — the
region id a query landed in, the worker count of a parallel event pass
— which the exporters (:mod:`repro.obs.export`) surface as Chrome
trace-event ``args``.

Nesting depth is tracked per thread so concurrent query threads sharing
one recorder do not interleave each other's parentage; completed spans
land in one shared, lock-protected buffer in completion order, each
stamped with its thread's identifier so exporters can lay concurrent
timelines out side by side.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from types import TracebackType
from typing import Mapping

__all__ = ["SpanRecord", "TraceBuffer"]


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One completed span: name, nesting depth, timing, and attributes.

    ``started`` is a ``time.perf_counter`` value — meaningful only
    relative to other spans of the same process, which is exactly what a
    trace needs.  ``thread`` is the originating thread's ``ident`` (an
    arbitrary but stable-within-run integer); ``attributes`` is an
    immutable snapshot of the attrs passed at span open.
    """

    name: str
    depth: int
    started: float
    elapsed: float
    thread: int = 0
    attributes: Mapping[str, object] = field(default_factory=dict)


class TraceBuffer:
    """A bounded, thread-safe collector of completed :class:`SpanRecord`s.

    Once ``capacity`` spans are held, further spans are counted but not
    stored (``dropped``), bounding memory under unbounded workloads.
    """

    def __init__(self, capacity: int = 4096):
        self._lock = threading.Lock()
        self._spans: list[SpanRecord] = []
        self._depth = threading.local()
        self.capacity = capacity
        self.dropped = 0

    def span(
        self, name: str, attrs: Mapping[str, object] | None = None
    ) -> "_ActiveSpan":
        """Open a span; use as a context manager."""
        return _ActiveSpan(self, name, attrs)

    def record(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._spans) < self.capacity:
                self._spans.append(record)
            else:
                self.dropped += 1

    @property
    def spans(self) -> list[SpanRecord]:
        """A snapshot copy of the completed spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    # -- per-thread nesting depth ------------------------------------------

    def _enter_depth(self) -> int:
        depth = getattr(self._depth, "value", 0)
        self._depth.value = depth + 1
        return depth

    def _exit_depth(self) -> None:
        self._depth.value = getattr(self._depth, "value", 1) - 1


class _ActiveSpan:
    """Context manager for one open span of a :class:`TraceBuffer`."""

    __slots__ = ("_buffer", "_name", "_attrs", "_depth", "_started")

    def __init__(
        self,
        buffer: TraceBuffer,
        name: str,
        attrs: Mapping[str, object] | None = None,
    ):
        self._buffer = buffer
        self._name = name
        self._attrs = dict(attrs) if attrs else {}

    def __enter__(self) -> None:
        self._depth = self._buffer._enter_depth()
        self._started = time.perf_counter()
        return None

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        elapsed = time.perf_counter() - self._started
        self._buffer._exit_depth()
        self._buffer.record(
            SpanRecord(
                self._name,
                self._depth,
                self._started,
                elapsed,
                threading.get_ident(),
                self._attrs,
            )
        )
        return False
