"""Span-style tracing: nested, named timings of build and query phases.

A span is one timed, named stretch of work; spans nest (a ``build``
span contains ``build.dominating``, ``build.separating`` and
``build.load`` children), and the completed records reconstruct the
phase breakdown of Figure 14 without any bespoke timing code at the
call sites.

Nesting depth is tracked per thread so concurrent query threads sharing
one recorder do not interleave each other's parentage; completed spans
land in one shared, lock-protected buffer in completion order.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from types import TracebackType

__all__ = ["SpanRecord", "TraceBuffer"]


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One completed span: its name, nesting depth, and elapsed seconds.

    ``started`` is a ``time.perf_counter`` value — meaningful only
    relative to other spans of the same process, which is exactly what a
    trace needs.
    """

    name: str
    depth: int
    started: float
    elapsed: float


class TraceBuffer:
    """A bounded, thread-safe collector of completed :class:`SpanRecord`s.

    Once ``capacity`` spans are held, further spans are counted but not
    stored (``dropped``), bounding memory under unbounded workloads.
    """

    def __init__(self, capacity: int = 4096):
        self._lock = threading.Lock()
        self._spans: list[SpanRecord] = []
        self._depth = threading.local()
        self.capacity = capacity
        self.dropped = 0

    def span(self, name: str) -> "_ActiveSpan":
        """Open a span; use as a context manager."""
        return _ActiveSpan(self, name)

    def record(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._spans) < self.capacity:
                self._spans.append(record)
            else:
                self.dropped += 1

    @property
    def spans(self) -> list[SpanRecord]:
        """A snapshot copy of the completed spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    # -- per-thread nesting depth ------------------------------------------

    def _enter_depth(self) -> int:
        depth = getattr(self._depth, "value", 0)
        self._depth.value = depth + 1
        return depth

    def _exit_depth(self) -> None:
        self._depth.value = getattr(self._depth, "value", 1) - 1


class _ActiveSpan:
    """Context manager for one open span of a :class:`TraceBuffer`."""

    __slots__ = ("_buffer", "_name", "_depth", "_started")

    def __init__(self, buffer: TraceBuffer, name: str):
        self._buffer = buffer
        self._name = name

    def __enter__(self) -> None:
        self._depth = self._buffer._enter_depth()
        self._started = time.perf_counter()
        return None

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        elapsed = time.perf_counter() - self._started
        self._buffer._exit_depth()
        self._buffer.record(
            SpanRecord(self._name, self._depth, self._started, elapsed)
        )
        return False
