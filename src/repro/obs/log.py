"""Structured JSONL event logging: every recorder event as one line.

:class:`JsonlRecorder` implements the
:class:`~repro.obs.recorder.Recorder` protocol by appending one JSON
object per event to a file (or any writable text stream):

.. code-block:: json

    {"event": "count", "level": "debug", "name": "pager.reads",
     "value": 1, "attrs": {"page": 7}, "ts": 0.001234}

Events carry a *level* — ``count``/``observe``/``timer`` events are
``debug``, span completions are ``info`` — and the recorder drops
events below its configured threshold, so a long run can keep an
``info`` log of phase spans without paying for per-page noise.
Timestamps are seconds since the recorder was opened
(``time.perf_counter`` deltas), matching the relative-time convention
of :class:`~repro.obs.tracing.SpanRecord`.

The writer is lock-protected and line-buffered: concurrent query
threads sharing one recorder interleave whole lines, never partial
ones.  Read a log back with :func:`read_jsonl`.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from types import TracebackType
from typing import ContextManager, Iterator, Mapping, TextIO

from ..errors import StorageError
from .recorder import Recorder

__all__ = ["JsonlRecorder", "LEVELS", "event_matches", "read_jsonl"]

#: Event severity order; the recorder drops events below its threshold.
LEVELS: dict[str, int] = {"debug": 10, "info": 20, "warning": 30}

#: Level assigned to each recorder verb.
_VERB_LEVELS = {"count": "debug", "observe": "debug", "timer": "debug", "span": "info"}


class JsonlRecorder(Recorder):
    """A recorder writing each event as one JSON line.

    ``sink`` is a path (opened for writing, truncating) or an existing
    text stream (not closed by :meth:`close`).  ``level`` is the minimum
    severity written.  Use as a context manager, or call :meth:`close`
    when done; events after close are dropped silently so a shared
    recorder outliving its log file does not crash the instrumented
    code (observability must never change answers).
    """

    enabled = True

    def __init__(
        self,
        sink: str | Path | TextIO,
        *,
        level: str = "debug",
    ):
        if level not in LEVELS:
            raise StorageError(
                f"unknown log level {level!r}; expected one of {sorted(LEVELS)}"
            )
        self.level = level
        self._threshold = LEVELS[level]
        self._lock = threading.Lock()
        if isinstance(sink, (str, Path)):
            path = Path(sink)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._stream: TextIO | None = path.open("w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = sink
            self._owns_stream = False
        self._origin = time.perf_counter()
        self.lines_written = 0
        self.lines_dropped = 0

    # -- the recorder protocol ---------------------------------------------

    def count(
        self,
        name: str,
        value: int = 1,
        attrs: Mapping[str, object] | None = None,
    ) -> None:
        self._emit("count", name, value, attrs)

    def observe(
        self,
        name: str,
        value: float,
        attrs: Mapping[str, object] | None = None,
    ) -> None:
        self._emit("observe", name, value, attrs)

    def timer(self, name: str) -> ContextManager[None]:
        return _TimedEvent(self, "timer", name, None)

    def span(
        self, name: str, attrs: Mapping[str, object] | None = None
    ) -> ContextManager[None]:
        return _TimedEvent(self, "span", name, attrs)

    # -- writing ------------------------------------------------------------

    def _emit(
        self,
        verb: str,
        name: str,
        value: float,
        attrs: Mapping[str, object] | None,
    ) -> None:
        level = _VERB_LEVELS[verb]
        if LEVELS[level] < self._threshold:
            with self._lock:
                self.lines_dropped += 1
            return
        record = {
            "event": verb,
            "level": level,
            "name": name,
            "value": value,
            "attrs": dict(attrs) if attrs else {},
            "ts": round(time.perf_counter() - self._origin, 9),
        }
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            if self._stream is None:
                self.lines_dropped += 1
                return
            self._stream.write(line + "\n")
            self.lines_written += 1

    def flush(self) -> None:
        with self._lock:
            if self._stream is not None:
                self._stream.flush()

    def close(self) -> None:
        """Flush and release the sink; further events are dropped."""
        with self._lock:
            if self._stream is None:
                return
            self._stream.flush()
            if self._owns_stream:
                self._stream.close()
            self._stream = None

    def __enter__(self) -> "JsonlRecorder":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        self.close()
        return False


class _TimedEvent:
    """Context manager emitting one timed event on exit."""

    __slots__ = ("_recorder", "_verb", "_name", "_attrs", "_started")

    def __init__(
        self,
        recorder: JsonlRecorder,
        verb: str,
        name: str,
        attrs: Mapping[str, object] | None,
    ):
        self._recorder = recorder
        self._verb = verb
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> None:
        self._started = time.perf_counter()
        return None

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        self._recorder._emit(
            self._verb,
            self._name,
            time.perf_counter() - self._started,
            self._attrs,
        )
        return False


def event_matches(
    event: dict,
    *,
    min_level: str = "debug",
    trace_id: str | None = None,
) -> bool:
    """Whether one logged event passes a level/trace filter.

    ``min_level`` is inclusive; unknown event levels rank below
    ``debug``.  With a ``trace_id``, the event must be attributed to it
    — either as its ``trace`` attr or inside its ``traces`` list (the
    form a coalesced batch emits; see :mod:`repro.obs.context`).
    Drives ``python -m repro.obs tail``.
    """
    if min_level not in LEVELS:
        raise StorageError(
            f"unknown log level {min_level!r}; "
            f"expected one of {sorted(LEVELS)}"
        )
    if LEVELS.get(str(event.get("level")), 0) < LEVELS[min_level]:
        return False
    if trace_id is not None:
        attrs = event.get("attrs") or {}
        if attrs.get("trace") != trace_id and not (
            isinstance(attrs.get("traces"), list)
            and trace_id in attrs["traces"]
        ):
            return False
    return True


def read_jsonl(source: str | Path | TextIO) -> Iterator[dict]:
    """Yield the event dictionaries of a JSONL log, skipping blanks.

    Raises :class:`~repro.errors.StorageError` on a line that is not
    valid JSON — a torn write means the log cannot be trusted.
    """
    if isinstance(source, (str, Path)):
        handle: TextIO = Path(source).open("r", encoding="utf-8")
        owns = True
    else:
        handle = source
        owns = False
    try:
        for lineno, line in enumerate(handle, start=1):
            text = line.strip()
            if not text:
                continue
            try:
                yield json.loads(text)
            except json.JSONDecodeError as exc:
                raise StorageError(
                    f"invalid JSONL event at line {lineno}: {exc}"
                ) from exc
    finally:
        if owns:
            handle.close()
