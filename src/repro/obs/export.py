"""Exporters: Chrome trace-event JSON and Prometheus text snapshots.

Two one-way bridges out of the in-process observability layer:

* :func:`chrome_trace` turns completed
  :class:`~repro.obs.tracing.SpanRecord`s into the Chrome trace-event
  JSON format, loadable in ``chrome://tracing`` or Perfetto, with span
  attributes surfaced as event ``args``;
* :func:`prometheus_text` renders a
  :meth:`~repro.obs.metrics.MetricsRecorder.snapshot` in the Prometheus
  text exposition format (counters as ``counter``, series as their
  ``_count`` / ``_sum`` / ``_min`` / ``_max`` / ``_dropped`` gauges).

Both outputs are deterministic given their inputs (sorted name order,
stable field order); only the timestamps inside span records vary run
to run.  :func:`diff_snapshots` compares two snapshot (or benchmark
report) dictionaries counter by counter for the
``python -m repro.obs diff-snapshots`` CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from .tracing import SpanRecord

__all__ = [
    "SnapshotDelta",
    "chrome_trace",
    "diff_snapshots",
    "filter_trace_events",
    "prometheus_text",
    "render_snapshot_diff",
    "write_chrome_trace",
]


# -- Chrome trace-event JSON ---------------------------------------------------


def chrome_trace(
    spans: Iterable[SpanRecord], *, process_name: str = "repro"
) -> dict:
    """Spans as a Chrome trace-event JSON document.

    Each completed span becomes one complete ("X") event; timestamps are
    microseconds relative to the earliest span, and per-run thread
    identifiers are renumbered 0, 1, 2, ... in order of first appearance
    so traces of identical runs differ only in durations.  Span
    attributes become the event's ``args``.
    """
    records = sorted(spans, key=lambda s: (s.started, s.depth))
    origin = records[0].started if records else 0.0
    thread_ids: dict[int, int] = {}
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for record in records:
        tid = thread_ids.setdefault(record.thread, len(thread_ids))
        event = {
            "name": record.name,
            "cat": record.name.split(".", 1)[0],
            "ph": "X",
            "pid": 0,
            "tid": tid,
            "ts": (record.started - origin) * 1e6,
            "dur": record.elapsed * 1e6,
        }
        args = dict(record.attributes)
        args["depth"] = record.depth
        event["args"] = args
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def filter_trace_events(events: Iterable[dict], trace_id: str) -> list[dict]:
    """Chrome trace-event dicts attributed to ``trace_id``.

    An event matches when its ``args`` carry the id as ``trace`` or
    list it under ``traces`` (a coalesced batch names every request it
    amortized).  Metadata events (``ph`` = ``M``) are kept so the
    filtered document still names its process.
    """
    kept: list[dict] = []
    for event in events:
        if event.get("ph") == "M":
            kept.append(event)
            continue
        args = event.get("args") or {}
        if args.get("trace") == trace_id or (
            isinstance(args.get("traces"), list)
            and trace_id in args["traces"]
        ):
            kept.append(event)
    return kept


def write_chrome_trace(
    path: str | Path,
    spans: Iterable[SpanRecord],
    *,
    process_name: str = "repro",
) -> Path:
    """Write :func:`chrome_trace` of ``spans`` to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = chrome_trace(spans, process_name=process_name)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


# -- Prometheus text format ----------------------------------------------------


def _prometheus_name(name: str, *, namespace: str) -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    flat = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"{namespace}_{flat}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(snapshot: dict, *, namespace: str = "repro") -> str:
    """A metrics snapshot in the Prometheus text exposition format.

    Counters export as ``counter`` samples; each series exports its
    aggregate view as ``<name>_count`` / ``_sum`` / ``_min`` / ``_max``
    / ``_dropped`` gauges (retention-dropped samples included, so a
    scraper can tell exact summaries from truncated ones).  Output is
    sorted by metric name and ends with a newline.
    """
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    for name in sorted(counters):
        flat = _prometheus_name(name, namespace=namespace)
        lines.append(f"# HELP {flat} counter {name}")
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat} {_format_value(counters[name])}")
    series = snapshot.get("series", {})
    for name in sorted(series):
        flat = _prometheus_name(name, namespace=namespace)
        summary = series[name]
        lines.append(f"# HELP {flat} series {name}")
        lines.append(f"# TYPE {flat} gauge")
        for suffix, key in (
            ("count", "count"),
            ("sum", "total"),
            ("min", "min"),
            ("max", "max"),
            ("dropped", "dropped"),
        ):
            value = summary.get(key, 0)
            lines.append(f"{flat}_{suffix} {_format_value(value)}")
    return "\n".join(lines) + "\n"


# -- snapshot diffing ----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SnapshotDelta:
    """One counter's movement between two snapshots."""

    name: str
    old: float | None
    new: float | None

    @property
    def ratio(self) -> float | None:
        if self.old is None or self.new is None or self.old == 0:
            return None
        return self.new / self.old


def _counters_of(snapshot: dict) -> dict[str, float]:
    """The counter map of a snapshot *or* a ``BENCH_*.json`` report."""
    if "query_counters" in snapshot:  # a benchmark report
        return dict(snapshot["query_counters"])
    return dict(snapshot.get("counters", {}))


def diff_snapshots(old: dict, new: dict) -> list[SnapshotDelta]:
    """Counter-by-counter diff of two snapshots (or bench reports).

    Metrics present on only one side appear with the other side
    ``None``; the result is sorted by name.
    """
    old_counters = _counters_of(old)
    new_counters = _counters_of(new)
    return [
        SnapshotDelta(
            name, old_counters.get(name), new_counters.get(name)
        )
        for name in sorted(set(old_counters) | set(new_counters))
    ]


def render_snapshot_diff(deltas: Sequence[SnapshotDelta]) -> str:
    """Fixed-width table of a snapshot diff."""
    rows = [("counter", "old", "new", "ratio")]
    for delta in deltas:
        if delta.ratio is not None:
            ratio = f"{delta.ratio:.3f}x"
        elif delta.old is None:
            ratio = "added"
        elif delta.new is None:
            ratio = "removed"
        else:
            ratio = "-"
        rows.append(
            (
                delta.name,
                "-" if delta.old is None else _format_value(delta.old),
                "-" if delta.new is None else _format_value(delta.new),
                ratio,
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(4)]
    return "\n".join(
        "  ".join(row[i].ljust(widths[i]) for i in range(4)).rstrip()
        for row in rows
    )
