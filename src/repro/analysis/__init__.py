"""rjilint: repository-specific static analysis for the reproduction.

Generic linters cannot see the invariants this codebase lives on: the
package layering DAG that keeps the paper's algorithms (``core``) free
of engine concerns, tolerance-aware float comparisons on scores and
separating angles (Lemmas 4–5), deterministic seeded randomness in
everything that produces published numbers, and frozen paper constants.
This package is a small pluggable AST linter enforcing them at review
time, complementing the runtime oracle in :mod:`repro.core.verify`.

Run it as ``python -m repro.analysis [paths]``; suppress a finding with
a ``# rjilint: disable=RULE`` comment on the offending line.  Rules:

========  ============================================================
RJI001    imports must follow the declared package layering DAG
RJI002    no bare float ``==``/``!=`` on score/angle expressions
RJI003    no unseeded or process-global randomness in library code
RJI004    no bare ``except:`` / silently swallowed broad catches
RJI005    public modules declare a consistent literal ``__all__``
RJI006    frozen paper constants are never mutated
RJI007    query paths validate ``k`` against the construction bound
RJI008    storage I/O counters are mirrored into the recorder
RJI009    recorder metric names come from ``repro/obs/names.py``
RJI010    storage code never swallows detected-corruption errors
========  ============================================================
"""

from .context import ModuleContext, SuppressionIndex
from .dag import LAYER_DAG
from .registry import Finding, Rule, all_rules, get_rule, register
from .reporters import render_json, render_text
from .runner import (
    changed_files,
    collect_files,
    lint_context,
    lint_paths,
    lint_source,
)

__all__ = [
    "Finding",
    "LAYER_DAG",
    "ModuleContext",
    "Rule",
    "SuppressionIndex",
    "all_rules",
    "changed_files",
    "collect_files",
    "get_rule",
    "lint_context",
    "lint_paths",
    "lint_source",
    "register",
    "render_json",
    "render_text",
]
