"""rjilint: repository-specific static analysis for the reproduction.

Generic linters cannot see the invariants this codebase lives on: the
package layering DAG that keeps the paper's algorithms (``core``) free
of engine concerns, tolerance-aware float comparisons on scores and
separating angles (Lemmas 4–5), deterministic seeded randomness in
everything that produces published numbers, and frozen paper constants.
This package is a small pluggable AST linter enforcing them at review
time, complementing the runtime oracle in :mod:`repro.core.verify`.

Since v2 the tool is whole-program: :mod:`repro.analysis.model` parses
the full ``src/repro`` tree once into a content-hash-cached
:class:`~repro.analysis.model.ProjectIndex` (symbol tables, import
resolution, class attribute maps, a best-effort call graph), and
project-scope rules check cross-module properties — lock discipline,
global lock ordering, and the interprocedural error contract of the
public entry points.

Run it as ``python -m repro.analysis [paths]``; suppress a finding with
a ``# rjilint: disable=RULE`` comment on the offending line, or adopt a
backlog with ``--write-baseline`` / ``--baseline``.  Rules:

========  ============================================================
RJI001    imports must follow the declared package layering DAG
RJI002    no bare float ``==``/``!=`` on score/angle expressions
RJI003    no unseeded or process-global randomness in library code
RJI004    no bare ``except:`` / silently swallowed broad catches
RJI005    public modules declare a consistent literal ``__all__``
RJI006    frozen paper constants are never mutated
RJI007    query paths validate ``k`` against the construction bound
RJI008    storage I/O counters are mirrored into the recorder
RJI009    recorder metric names come from ``repro/obs/names.py``
RJI010    storage code never swallows detected-corruption errors
RJI011    lock-guarded fields are never touched outside their lock
RJI012    the lock-acquisition-order graph stays acyclic
RJI013    public entry points raise only the typed error taxonomy
========  ============================================================
"""

from .baseline import (
    baseline_key,
    filter_baseline,
    load_baseline,
    write_baseline,
)
from .context import ModuleContext, SuppressionIndex
from .dag import LAYER_DAG
from .registry import (
    Finding,
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
    known_rule_ids,
    register,
)
from .reporters import render_json, render_text
from .runner import (
    changed_files,
    changed_python_files,
    collect_files,
    lint_context,
    lint_paths,
    lint_source,
    run_project_rules,
)

__all__ = [
    "Finding",
    "LAYER_DAG",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "SuppressionIndex",
    "all_rules",
    "baseline_key",
    "changed_files",
    "changed_python_files",
    "collect_files",
    "filter_baseline",
    "get_rule",
    "known_rule_ids",
    "lint_context",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register",
    "render_json",
    "render_text",
    "run_project_rules",
    "write_baseline",
]
