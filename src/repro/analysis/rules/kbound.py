"""RJI007 — query paths must validate ``k`` against the bound ``K``.

The index is built for a construction-time bound ``K``; Lemma 2's
pruning guarantee only covers ``k <= K``, so a query entry point that
consumes ``k`` without checking it against a bound can silently return
*wrong* answers for oversized ``k`` (the dominating set simply does not
contain the tuples a larger answer would need).  Every function that
looks like a query entry point — its name contains ``query`` or starts
with ``robust_`` — and takes a ``k`` parameter must either

* compare ``k`` against a bound (an identifier mentioning ``bound``,
  ``k_bound``, ``k_effective``, or ``K``),
* call a validator helper (a callee whose name contains ``validate``),
  or
* delegate to another query function, passing ``k`` through.

Baselines that by design have no construction bound (full scan, HRJN,
Onion) suppress the rule with ``# rjilint: disable=RJI007`` — the
comment documents the exemption at the definition site.

Bad::

    def query(self, preference, k):
        return self._evaluate(preference)[:k]

Good::

    def query(self, preference, k):
        self._validate_k(k)
        return self._evaluate(preference)[:k]
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..context import ModuleContext
from ..registry import Finding, Rule, register

__all__ = ["KBoundValidationRule"]

#: Function names treated as query entry points.
_QUERYISH = re.compile(r"(?i)(query|^robust_)")

#: Query-named helpers that *are* the validation (``_check_query``,
#: ``validate_query``...) — exempt, they carry no answer path.
_VALIDATORISH = re.compile(r"(?i)(check|validate)")

#: Terminal identifiers accepted as a bound in a comparison with ``k``.
#: The bare uppercase ``K`` is matched case-sensitively on its own so the
#: query parameter ``k`` itself never counts as its own bound.
_BOUNDISH = re.compile(r"(?i)(bound|effective|k_max|kmax)")
_BARE_K = re.compile(r"^K$")


def _is_queryish(name: str) -> bool:
    return bool(_QUERYISH.search(name)) and not _VALIDATORISH.search(name)


def _terminal_identifier(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return _terminal_identifier(node.value)
    return None


def _mentions_k(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id == "k"


def _boundish(node: ast.expr) -> bool:
    name = _terminal_identifier(node)
    if name is None:
        return False
    return bool(_BOUNDISH.search(name)) or bool(_BARE_K.match(name))


def _compares_k_to_bound(node: ast.Compare) -> bool:
    operands = [node.left, *node.comparators]
    has_k = any(_mentions_k(op) for op in operands)
    has_bound = any(_boundish(op) for op in operands)
    return has_k and has_bound


def _call_name(node: ast.Call) -> str | None:
    return _terminal_identifier(node.func)


def _passes_k(node: ast.Call) -> bool:
    if any(_mentions_k(arg) for arg in node.args):
        return True
    return any(
        keyword.arg == "k" or _mentions_k(keyword.value)
        for keyword in node.keywords
    )


def _validates_k(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether the function body bounds, validates, or delegates ``k``."""
    for node in ast.walk(func):
        if isinstance(node, ast.Compare) and _compares_k_to_bound(node):
            return True
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name is None:
                continue
            if _VALIDATORISH.search(name) and _passes_k(node):
                return True
            # Delegation: forwarding k to another query-ish callable
            # moves the obligation there.
            if _is_queryish(name) and _passes_k(node):
                return True
    return False


@register
class KBoundValidationRule(Rule):
    """Query entry points must check ``k`` against the construction bound."""

    id = "RJI007"
    name = "k-bound-validation"
    description = (
        "query functions taking k must compare it against a bound "
        "(k_bound/k_effective), call a validator, or delegate to a "
        "validated query path"
    )
    scope = "library"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_queryish(node.name):
                continue
            arg_names = {
                arg.arg
                for arg in (
                    *node.args.posonlyargs,
                    *node.args.args,
                    *node.args.kwonlyargs,
                )
            }
            if "k" not in arg_names:
                continue
            if _validates_k(node):
                continue
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"query function {node.name!r} uses k without validating "
                "it against the construction bound K (compare to a bound, "
                "call a validator, or delegate to a validated query path)",
            )
