"""The built-in rjilint rules.

Importing this package populates the registry in
:mod:`repro.analysis.registry`; each rule module self-registers via the
``@register`` decorator.
"""

from .constants import FrozenConstantRule
from .corruption import CorruptionHandlingRule
from .errorcontract import ErrorContractRule
from .exceptions import ExceptionHygieneRule
from .exports import DunderAllRule
from .floatcmp import FloatEqualityRule
from .iocounters import IOCounterDisciplineRule
from .kbound import KBoundValidationRule
from .layering import LayeringRule
from .lockdiscipline import LockDisciplineRule
from .lockorder import LockOrderRule
from .metricnames import MetricNameRegistryRule
from .randomness import UnseededRandomnessRule

__all__ = [
    "CorruptionHandlingRule",
    "DunderAllRule",
    "ErrorContractRule",
    "ExceptionHygieneRule",
    "FloatEqualityRule",
    "FrozenConstantRule",
    "IOCounterDisciplineRule",
    "KBoundValidationRule",
    "LayeringRule",
    "LockDisciplineRule",
    "LockOrderRule",
    "MetricNameRegistryRule",
    "UnseededRandomnessRule",
]
