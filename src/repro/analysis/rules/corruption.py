"""RJI010 — corruption errors must surface or route through recovery.

:class:`~repro.errors.CorruptPageError` and
:class:`~repro.errors.TornWriteError` are the storage layer's integrity
verdicts: a page failed its checksum, or a file is torn.  A read path
that catches one and carries on turns detected corruption back into a
silent wrong answer — the exact failure mode the self-verifying format
exists to prevent.  In ``repro.storage`` library code, a handler naming
either type must re-raise (the same error or a wrapping one), or live
inside the sanctioned recovery API — a function whose name marks it as
recovery code (``verify``/``repair``/``salvage``/``recover``), where
collecting corruption into a report *is* the handling.

Bad::

    try:
        payload = heap.read(address)
    except CorruptPageError:
        payload = b""          # serves fabricated data for a bad page

Good::

    try:
        payload = heap.read(address)
    except CorruptPageError as exc:
        raise TornWriteError(f"region lost: {exc}") from exc

    def verify(self):          # recovery API: reporting is handling
        try:
            payload = heap.read(address)
        except CorruptPageError as exc:
            report.errors.append(str(exc))
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..registry import Finding, Rule, register

__all__ = ["CorruptionHandlingRule"]

#: The integrity-verdict exception types this rule guards.
_GUARDED = ("CorruptPageError", "TornWriteError")

#: Function-name markers of the sanctioned recovery API.
_RECOVERY_MARKERS = ("verify", "repair", "salvage", "recover")


def _names_guarded_type(annotation: ast.expr | None) -> bool:
    """Whether an ``except`` annotation names a guarded type.

    Handles plain names, dotted references (``errors.CorruptPageError``)
    and tuples of either.  Broad catches (``StorageError``,
    ``Exception``) are out of scope — RJI004 owns those.
    """
    if isinstance(annotation, ast.Name):
        return annotation.id in _GUARDED
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in _GUARDED
    if isinstance(annotation, ast.Tuple):
        return any(_names_guarded_type(element) for element in annotation.elts)
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when any statement in the handler body raises."""
    return any(
        isinstance(node, ast.Raise)
        for stmt in handler.body
        for node in ast.walk(stmt)
    )


def _is_recovery_function(name: str) -> bool:
    lowered = name.lower()
    return any(marker in lowered for marker in _RECOVERY_MARKERS)


def _walk_handlers(
    node: ast.AST, in_recovery: bool
) -> Iterator[tuple[ast.ExceptHandler, bool]]:
    """Yield handlers with whether they sit inside a recovery function."""
    for child in ast.iter_child_nodes(node):
        inside = in_recovery
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inside = in_recovery or _is_recovery_function(child.name)
        if isinstance(child, ast.ExceptHandler):
            yield child, in_recovery
        yield from _walk_handlers(child, inside)


@register
class CorruptionHandlingRule(Rule):
    """Storage code must not swallow ``CorruptPageError``/``TornWriteError``."""

    id = "RJI010"
    name = "corruption-handling"
    description = (
        "storage read paths must not catch CorruptPageError/TornWriteError "
        "without re-raising or routing through the recovery API "
        "(verify/repair/salvage)"
    )
    scope = "library"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.package != "storage":
            return
        for handler, in_recovery in _walk_handlers(ctx.tree, False):
            if not _names_guarded_type(handler.type):
                continue
            if in_recovery or _reraises(handler):
                continue
            yield self.finding(
                ctx,
                handler.lineno,
                handler.col_offset,
                "handler swallows a detected-corruption error; re-raise it "
                "or move the handling into the recovery API "
                "(verify/repair/salvage)",
            )
