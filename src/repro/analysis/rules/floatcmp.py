"""RJI002 — bare float equality on score/angle expressions.

Scores, sweep angles, separating points, and tangents are floating
point; Lemmas 4–5 make tie handling tolerance-sensitive, so comparing
them with ``==`` / ``!=`` silently breaks exactly the cases the paper's
correctness argument cares about.  Use ``math.isclose`` /
``np.isclose`` or the declared tolerance helpers instead.

Bad::

    if result.score == best_score:
        ...

Good::

    if math.isclose(result.score, best_score, rel_tol=1e-12):
        ...
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..context import ModuleContext
from ..registry import Finding, Rule, register

__all__ = ["FloatEqualityRule"]

#: Identifiers that denote score/angle/separating-point quantities.
_SCOREISH = re.compile(r"(?i)(score|angle|tangent|slope|separat)")

#: Counting/indexing identifiers exempted even when they mention a
#: score-ish word (``n_angles``, ``score_count``, ...): those hold ints.
_COUNTISH = re.compile(
    r"(?i)(^(n|num|len|count|idx|index)_|_(n|count|len|idx|index|pos|positions?|ids?)$)"
)


def _terminal_identifier(node: ast.expr) -> str | None:
    """The rightmost name of an expression, if it has one."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _terminal_identifier(node.func)
    if isinstance(node, ast.Subscript):
        return _terminal_identifier(node.value)
    return None


def _scoreish(node: ast.expr) -> bool:
    name = _terminal_identifier(node)
    if name is None:
        return False
    return bool(_SCOREISH.search(name)) and not _COUNTISH.search(name)


def _exempt_operand(node: ast.expr) -> bool:
    """Operands whose comparison is not a float comparison at all."""
    return isinstance(node, ast.Constant) and (
        node.value is None
        or isinstance(node.value, (bool, str, bytes))
    )


@register
class FloatEqualityRule(Rule):
    """Score/angle expressions must not be compared with ``==``/``!=``."""

    id = "RJI002"
    name = "float-equality"
    description = (
        "score/angle/separating-point expressions must use math.isclose, "
        "np.isclose, or a declared tolerance instead of == / !="
    )
    scope = "library"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _exempt_operand(lhs) or _exempt_operand(rhs):
                    continue
                culprit = None
                if _scoreish(lhs):
                    culprit = _terminal_identifier(lhs)
                elif _scoreish(rhs):
                    culprit = _terminal_identifier(rhs)
                if culprit is None:
                    continue
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"bare float {symbol} on {culprit!r}; use math.isclose/"
                    "np.isclose or a declared tolerance helper",
                )
