"""RJI013 — error contracts: entry points surface only the taxonomy.

Callers of the library's public entry points — ``query``,
``query_batch``, ``build``, ``explain``, the storage ``load`` /
``verify`` / ``repair`` trio, SQL ``execute``, and the serving layer's
``handle_request`` / ``health`` — are promised that
every failure arrives as a :class:`repro.errors.ReproError` subclass.
This rule propagates explicit ``raise`` sites interprocedurally through
the call graph (with ``except`` absorption by subclass) and reports any
entry point that can leak an untyped exception: ``struct.error`` from a
corrupt page, ``KeyError`` from a missing column, a bare ``Exception``.

Scope: library packages only (``core``, ``storage``, ``sql``,
``relalg``, ``rtree``, ``baselines``, ``faults``, ``obs`` and top-level
modules).  Tooling packages (``bench``, ``experiments``, ``analysis``,
``datagen``) keep their own conventions and are excluded.

Bad::

    class DiskIndex:
        def query(self, q):
            return struct.unpack("<i", page)[0]   # struct.error escapes

Good: convert at the boundary::

    try:
        return struct.unpack("<i", page)[0]
    except struct.error as exc:
        raise CorruptPageError(...) from exc
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..registry import Finding, ProjectRule, register

if TYPE_CHECKING:  # pragma: no cover
    from ..model import ProjectIndex

__all__ = ["ErrorContractRule"]

#: Method / function names that form the library's public surface.
_ENTRY_NAMES = frozenset(
    {
        "query",
        "query_batch",
        "build",
        "explain",
        "load",
        "verify",
        "repair",
        "execute",
        # the serving layer's dispatch and client round trips
        "handle_request",
        "health",
        # observability admin ops over the same wire (RJI013 applies to
        # the telemetry surface exactly as to the query surface)
        "stats",
        "dump",
    }
)

#: Sub-packages whose error conventions are their own (tooling, not library).
_EXCLUDED_PACKAGES = frozenset({"analysis", "bench", "datagen", "experiments"})

#: The taxonomy root every escaping type must derive from.
_TAXONOMY_ROOT = "repro.errors.ReproError"


@register
class ErrorContractRule(ProjectRule):
    """Interprocedural escape check on the public entry points."""

    id = "RJI013"
    name = "error-contract"
    description = (
        "public entry points (query/query_batch/build/explain/load/verify/"
        "repair/execute/handle_request/health) may only raise "
        "repro.errors.ReproError subclasses"
    )
    scope = "project"

    def check_project(self, project: "ProjectIndex") -> Iterator[Finding]:
        for module in project.modules.values():
            parts = module.module.split(".")
            if len(parts) > 2 and parts[1] in _EXCLUDED_PACKAGES:
                continue
            for fn in module.functions.values():
                if fn.name in _ENTRY_NAMES:
                    yield from self._check_entry(
                        project, module.relpath, fn, fn.name
                    )
            for cls in module.classes.values():
                if cls.name.startswith("_"):
                    continue
                for name, fn in cls.methods.items():
                    if name in _ENTRY_NAMES:
                        yield from self._check_entry(
                            project,
                            module.relpath,
                            fn,
                            f"{cls.name}.{name}",
                        )

    def _check_entry(
        self, project: "ProjectIndex", relpath: str, fn, label: str
    ) -> Iterator[Finding]:
        leaks = []
        for raised, origin in sorted(project.escapes(fn.qualname).items()):
            if _TAXONOMY_ROOT in project.ancestors(raised):
                continue
            leaks.append((raised, origin))
        for raised, origin in leaks:
            yield self.project_finding(
                relpath,
                fn.lineno,
                0,
                f"entry point {label}() may leak {raised} "
                f"(raised at {origin.relpath}:{origin.line}); convert it "
                "to a repro.errors type at the boundary",
            )
