"""RJI004 — exception hygiene.

A bare ``except:`` (which also swallows ``KeyboardInterrupt``) is never
acceptable.  Catching ``Exception``/``BaseException`` is allowed only
when the handler demonstrably *handles* the failure: it re-raises, or it
uses the bound exception object (logging, reporting, wrapping), or the
line carries an explicit ``# noqa`` annotation acknowledging the broad
catch.  Anything else silently discards errors that the verification
layer (``repro.core.verify``) exists to surface.

Bad::

    try:
        index.check_invariants()
    except Exception:
        pass

Good::

    try:
        index.check_invariants()
    except Exception as exc:  # noqa: BLE001 - reported, not raised
        report.structural_errors.append(str(exc))
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..registry import Finding, Rule, register

__all__ = ["ExceptionHygieneRule"]

_BROAD = ("Exception", "BaseException")


def _is_broad(annotation: ast.expr | None) -> bool:
    if isinstance(annotation, ast.Name):
        return annotation.id in _BROAD
    if isinstance(annotation, ast.Tuple):
        return any(_is_broad(element) for element in annotation.elts)
    return False


def _handler_handles(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises or uses the bound exception."""
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
            if (
                handler.name is not None
                and isinstance(node, ast.Name)
                and node.id == handler.name
            ):
                return True
    return False


@register
class ExceptionHygieneRule(Rule):
    """No bare ``except:``; broad catches must report or re-raise."""

    id = "RJI004"
    name = "exception-hygiene"
    description = (
        "bare 'except:' is banned; 'except Exception' must re-raise, use "
        "the bound exception, or carry a # noqa annotation"
    )
    scope = "all"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "bare 'except:' swallows KeyboardInterrupt/SystemExit; "
                    "catch a specific exception type",
                )
                continue
            if not _is_broad(node.type):
                continue
            if _handler_handles(node):
                continue
            if "noqa" in ctx.comments.get(node.lineno, ""):
                continue
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                "broad exception catch swallows the error; re-raise, use "
                "the bound exception, or annotate with # noqa",
            )
