"""RJI005 — ``__all__`` consistency.

Every public library module declares ``__all__`` as a literal list or
tuple of strings, every listed name is actually bound at module top
level, and every top-level public function or class is listed.  The API
surface tests iterate ``__all__``, so an inconsistent declaration means
an untested (or phantom) public name.

Bad::

    __all__ = ["build_index", "missing_name"]

    def build_index(...): ...
    def also_public(...): ...     # defined but not exported

Good::

    __all__ = ["also_public", "build_index"]

    def build_index(...): ...
    def also_public(...): ...
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..registry import Finding, Rule, register

__all__ = ["DunderAllRule"]

_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _top_level_bindings(tree: ast.Module) -> tuple[set[str], bool]:
    """Names bound at module top level, and whether a ``*`` import exists.

    Recurses into top-level ``if``/``try``/``with`` blocks so guarded
    bindings (``try: from scipy... except ImportError: ConvexHull =
    None``) count as bound.
    """
    bound: set[str] = set()
    has_star = False

    def visit_block(stmts: list[ast.stmt]) -> None:
        nonlocal has_star
        for stmt in stmts:
            if isinstance(stmt, _DEFS):
                bound.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    _collect_targets(target, bound)
            elif isinstance(stmt, ast.AnnAssign):
                _collect_targets(stmt.target, bound)
            elif isinstance(stmt, ast.AugAssign):
                _collect_targets(stmt.target, bound)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name == "*":
                        has_star = True
                    else:
                        bound.add(alias.asname or alias.name)
            elif isinstance(stmt, ast.If):
                visit_block(stmt.body)
                visit_block(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                visit_block(stmt.body)
                for handler in stmt.handlers:
                    visit_block(handler.body)
                visit_block(stmt.orelse)
                visit_block(stmt.finalbody)
            elif isinstance(stmt, ast.With):
                visit_block(stmt.body)

    visit_block(tree.body)
    return bound, has_star


def _collect_targets(target: ast.expr, into: set[str]) -> None:
    if isinstance(target, ast.Name):
        into.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _collect_targets(element, into)


def _find_dunder_all(
    tree: ast.Module,
) -> tuple[ast.Assign | None, list[str] | None]:
    """The top-level ``__all__`` assignment and its literal value."""
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__"
            for t in stmt.targets
        ):
            continue
        if not isinstance(stmt.value, (ast.List, ast.Tuple)):
            return stmt, None
        names: list[str] = []
        for element in stmt.value.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                names.append(element.value)
            else:
                return stmt, None
        return stmt, names
    return None, None


@register
class DunderAllRule(Rule):
    """Public modules declare a literal ``__all__`` matching their defs."""

    id = "RJI005"
    name = "dunder-all"
    description = (
        "every public library module declares a literal __all__ whose "
        "names are bound and which lists every top-level public def/class"
    )
    scope = "library"

    def applies_to(self, ctx: ModuleContext) -> bool:
        if not super().applies_to(ctx):
            return False
        filename = ctx.relpath.rsplit("/", 1)[-1]
        if filename == "__init__.py":
            return True
        # ``__main__.py`` and private ``_foo.py`` modules are not public.
        return not filename.startswith("_")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        assignment, names = _find_dunder_all(ctx.tree)
        if assignment is None:
            yield self.finding(
                ctx, 1, 0, "public module does not declare __all__"
            )
            return
        if names is None:
            yield self.finding(
                ctx,
                assignment.lineno,
                assignment.col_offset,
                "__all__ must be a literal list/tuple of string names so "
                "it is statically checkable",
            )
            return
        bound, has_star = _top_level_bindings(ctx.tree)
        seen: set[str] = set()
        for name in names:
            if name in seen:
                yield self.finding(
                    ctx,
                    assignment.lineno,
                    assignment.col_offset,
                    f"__all__ lists {name!r} more than once",
                )
            seen.add(name)
            if name not in bound and not has_star:
                yield self.finding(
                    ctx,
                    assignment.lineno,
                    assignment.col_offset,
                    f"__all__ lists {name!r}, which is not bound at module "
                    "top level",
                )
        for stmt in ctx.tree.body:
            if not isinstance(stmt, _DEFS):
                continue
            if stmt.name.startswith("_") or stmt.name in seen:
                continue
            yield self.finding(
                ctx,
                stmt.lineno,
                stmt.col_offset,
                f"top-level public {type(stmt).__name__.replace('Def', '').lower()} "
                f"{stmt.name!r} is missing from __all__",
            )
