"""RJI008 — I/O-counter discipline in the storage layer.

The storage substrate double-books every physical and logical I/O
event: a plain integer counter (``IOCounters.reads``, ``BufferPool.hits``,
...) that benchmarks read synchronously, and a
:class:`~repro.obs.Recorder` ``count`` call that feeds the observability
layer.  The bench regression gate compares *recorder* counters between
runs, so an increment that bumps only the integer silently disappears
from regression reports while still showing up in ``DiskQueryStats`` —
the two views drift apart.

This rule keeps them in lock-step: inside ``repro.storage`` library
modules, any function that increments an I/O counter attribute
(``reads`` / ``writes`` / ``hits`` / ``misses`` via ``+=``) must also
route the event through a recorder ``count(...)`` call somewhere in the
same function.

Bad::

    def read(self, page_id):
        self.counters.reads += 1
        return self._pages[page_id]

Good::

    def read(self, page_id):
        self.counters.reads += 1
        if self.recorder.enabled:
            self.recorder.count("pager.reads")
        return self._pages[page_id]
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..registry import Finding, Rule, register

__all__ = ["IOCounterDisciplineRule"]

#: Attribute names that denote an I/O event counter.
_COUNTER_ATTRS = frozenset({"reads", "writes", "hits", "misses"})


def _counter_increments(func: ast.AST) -> list[ast.AugAssign]:
    """``<something>.<counter> += ...`` statements within ``func``."""
    return [
        node
        for node in ast.walk(func)
        if isinstance(node, ast.AugAssign)
        and isinstance(node.target, ast.Attribute)
        and node.target.attr in _COUNTER_ATTRS
    ]


def _mentions_recorder(node: ast.expr) -> bool:
    """Whether an attribute chain passes through a recorder-ish name."""
    while isinstance(node, ast.Attribute):
        if "recorder" in node.attr.lower():
            return True
        node = node.value
    return isinstance(node, ast.Name) and "recorder" in node.id.lower()


def _has_recorder_count(func: ast.AST) -> bool:
    """Whether ``func`` contains a ``<recorder>.count(...)`` call."""
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "count"
            and _mentions_recorder(node.func.value)
        ):
            return True
    return False


@register
class IOCounterDisciplineRule(Rule):
    """Storage I/O counters must be mirrored into the recorder."""

    id = "RJI008"
    name = "io-counter-discipline"
    description = (
        "storage-layer functions that bump an I/O counter (reads/writes/"
        "hits/misses) must also emit the event via recorder.count(...)"
    )
    scope = "library"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return super().applies_to(ctx) and ctx.package == "storage"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            increments = _counter_increments(node)
            if not increments or _has_recorder_count(node):
                continue
            for inc in increments:
                assert isinstance(inc.target, ast.Attribute)
                yield self.finding(
                    ctx,
                    inc.lineno,
                    inc.col_offset,
                    f"'{inc.target.attr}' counter incremented without a "
                    "matching recorder.count(...) in the same function; "
                    "the bench regression gate only sees recorder counters",
                )
