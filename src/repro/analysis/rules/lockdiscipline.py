"""RJI011 — lock discipline: guarded fields stay guarded.

For every class that owns a lock (``threading.Lock``/``RLock``/
``Condition`` or the repo's ``ReadWriteLock``), the rule infers which
instance fields the lock guards: a field *mutated* outside ``__init__``
is guarded by lock ``L`` when the majority of its accesses happen while
``L`` is held (``with self._lock:``, ``with self._lock.reading()`` /
``.writing():``, or the ``try/finally: release`` discipline), or when
the field carries an explicit annotation::

    self._table = {}  # rjilint: guarded-by(_lock)

It then flags:

* any read or write of a guarded field outside its lock;
* a *write* to a guarded field while only the read side of a
  readers-writer lock is held;
* blocking operations (``sleep``, ``open``, ``fsync``, byte-file I/O)
  performed while holding any lock — latency under a recorder or
  metrics lock serializes every instrumented thread behind it.

Private helpers (``_name``) called only from lock-held sites inherit
the held set of their callers, so the ``_peek_state``-style pattern
(helper that asserts "caller holds the lock") needs no annotation.

Bad::

    class Pool:
        def __init__(self):
            self._lock = threading.Lock()
            self._frames = {}
        def get(self, k):
            return self._frames[k]        # unguarded read
        def put(self, k, v):
            with self._lock:
                self._frames[k] = v

Good: take the lock on both paths, or annotate a deliberately
unguarded field with ``# rjilint: disable=RJI011`` where it is read.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..registry import Finding, ProjectRule, register

if TYPE_CHECKING:  # pragma: no cover
    from ..model import ClassSummary, ModuleSummary, ProjectIndex

__all__ = ["LockDisciplineRule"]

#: Methods whose writes establish, rather than share, state.
_WRITE_MODES = frozenset({"exclusive", "write"})


def _entry_held(cls: "ClassSummary") -> dict[str, frozenset[str]]:
    """Locks every internal call site of a private method holds.

    Fixpoint over the class-internal call graph: a ``_private`` method
    called only while ``L`` is held is analyzed as if it held ``L``.
    """
    held: dict[str, frozenset[str]] = {name: frozenset() for name in cls.methods}
    for _ in range(len(cls.methods) + 1):
        changed = False
        callers: dict[str, list[frozenset[str]]] = {}
        for name, fn in cls.methods.items():
            base = held[name]
            for site in fn.calls:
                if (
                    len(site.path) == 2
                    and site.path[0] == "self"
                    and site.path[1] in cls.methods
                    and not site.is_property
                ):
                    site_held = frozenset(attr for attr, _m in site.held) | base
                    callers.setdefault(site.path[1], []).append(site_held)
        for name, fn in cls.methods.items():
            if not name.startswith("_") or name.startswith("__"):
                continue
            sites = callers.get(name)
            if not sites:
                continue
            common = frozenset.intersection(*sites)
            if common and common != held[name]:
                held[name] = common
                changed = True
        if not changed:
            return held
    return held


@register
class LockDisciplineRule(ProjectRule):
    """Guarded-by inference + unguarded-access and blocking-op checks."""

    id = "RJI011"
    name = "lock-discipline"
    description = (
        "fields majority-accessed (or annotated guarded-by) under a class's "
        "lock must never be touched outside it; no writes under a read "
        "lock; no blocking calls while holding a lock"
    )
    scope = "project"

    def check_project(self, project: "ProjectIndex") -> Iterator[Finding]:
        for module in project.modules.values():
            for cls in module.classes.values():
                yield from self._check_class(project, module, cls)

    def _check_class(
        self,
        project: "ProjectIndex",
        module: "ModuleSummary",
        cls: "ClassSummary",
    ) -> Iterator[Finding]:
        if not cls.lock_attrs:
            return
        entry_held = _entry_held(cls)
        # Gather per-field access statistics outside init methods.
        accesses: dict[str, list] = {}
        for name, fn in cls.methods.items():
            if fn.is_init:
                continue
            extra = entry_held[name]
            for access in fn.accesses:
                if access.attr in cls.lock_attrs:
                    continue
                effective = {attr: mode for attr, mode in access.held}
                for attr in extra:
                    effective.setdefault(attr, "exclusive")
                accesses.setdefault(access.attr, []).append(
                    (access, effective)
                )
        for attr, declared_lock in sorted(cls.guarded_annotations.items()):
            if declared_lock not in cls.lock_attrs:
                yield self.project_finding(
                    module.relpath,
                    cls.annotation_lines.get(attr, cls.lineno),
                    0,
                    f"guarded-by({declared_lock}) on field '{attr}' names no "
                    f"lock attribute of class {cls.name} "
                    f"(locks: {sorted(cls.lock_attrs) or 'none'})",
                )
        for attr in sorted(accesses):
            records = accesses[attr]
            guard = cls.guarded_annotations.get(attr)
            if guard is None:
                if not any(record.is_write for record, _ in records):
                    continue  # never mutated after construction
                guard = self._majority_lock(cls, records)
            if guard is None:
                continue
            total = len(records)
            under = sum(1 for _, held in records if guard in held)
            for record, held in records:
                if guard not in held:
                    verb = "written" if record.is_write else "read"
                    yield self.project_finding(
                        module.relpath,
                        record.line,
                        record.col,
                        f"field '{attr}' of {cls.name} is guarded by "
                        f"'{guard}' ({under} of {total} accesses hold it) "
                        f"but is {verb} here without the lock",
                    )
                elif record.is_write and held[guard] == "read":
                    yield self.project_finding(
                        module.relpath,
                        record.line,
                        record.col,
                        f"field '{attr}' of {cls.name} is written while "
                        f"only the read side of '{guard}' is held; take "
                        "the write lock",
                    )
        # Blocking operations under any held lock.
        for name, fn in cls.methods.items():
            for op in fn.blocking:
                locks = ", ".join(sorted({attr for attr, _m in op.held}))
                yield self.project_finding(
                    module.relpath,
                    op.line,
                    op.col,
                    f"blocking call {op.what}() while holding lock(s) "
                    f"{locks} of {cls.name}; move the slow operation "
                    "outside the critical section",
                )

    def _majority_lock(
        self, cls: "ClassSummary", records: list
    ) -> str | None:
        total = len(records)
        best: str | None = None
        for lock in sorted(cls.lock_attrs):
            under = sum(1 for _, held in records if lock in held)
            if under * 2 > total:
                best = lock if best is None else best
        return best
