"""RJI012 — lock-order: the acquisition graph must stay acyclic.

The project index records an edge ``A -> B`` whenever some code path
acquires lock ``B`` while holding lock ``A`` — either directly (nested
``with`` blocks) or through the call graph (a method called under ``A``
that may take ``B``, including ``@property`` reads).  Two threads taking
the same pair of locks in opposite orders can deadlock, so any cycle in
this graph is reported at the acquisition site that closes it.

The rule also flags *self*-deadlock: re-acquiring a plain
(non-reentrant) ``threading.Lock`` that is already held, directly or
through a callee.  Reentrant kinds are exempt — ``RLock``,
``Condition`` (whose default lock is an ``RLock``), and the repo's
``ReadWriteLock`` (read-side re-entry is part of its contract).

Bad::

    class A:
        def step(self):
            with self._x:
                with self._y: ...
        def other(self):
            with self._y:
                with self._x: ...   # opposite order -> cycle

Good: pick one global order (document it) and acquire in that order on
every path, or restructure so no path holds both locks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..registry import Finding, ProjectRule, register

if TYPE_CHECKING:  # pragma: no cover
    from ..model import ProjectIndex

__all__ = ["LockOrderRule"]

#: Lock kinds that may be taken again by the thread already holding them.
_REENTRANT_KINDS = frozenset({"rlock", "condition", "rwlock"})


@register
class LockOrderRule(ProjectRule):
    """Cycle and self-deadlock detection on the lock-order graph."""

    id = "RJI012"
    name = "lock-order"
    description = (
        "the global lock-acquisition-order graph must be acyclic, and a "
        "non-reentrant lock must never be re-acquired while held"
    )
    scope = "project"

    def check_project(self, project: "ProjectIndex") -> Iterator[Finding]:
        yield from self._cycles(project)
        yield from self._self_deadlocks(project)

    def _cycles(self, project: "ProjectIndex") -> Iterator[Finding]:
        for cycle in project.lock_cycles():
            closing = cycle[-1]
            chain = " -> ".join([edge.held for edge in cycle] + [cycle[0].held])
            witnesses = "; ".join(
                f"{edge.held} then {edge.acquired} at "
                f"{edge.relpath}:{edge.line}"
                for edge in cycle
            )
            yield self.project_finding(
                closing.relpath,
                closing.line,
                0,
                f"lock-order cycle {chain} — opposite-order acquisition "
                f"can deadlock ({witnesses})",
            )

    def _self_deadlocks(self, project: "ProjectIndex") -> Iterator[Finding]:
        for qual, (module, class_qual, fn) in sorted(project.functions.items()):
            if class_qual is None:
                continue
            cls = project.classes[class_qual][1]
            for acquire in fn.acquires:
                kind = cls.lock_attrs.get(acquire.attr)
                if kind in _REENTRANT_KINDS:
                    continue
                if any(held == acquire.attr for held, _mode in acquire.held):
                    yield self.project_finding(
                        module.relpath,
                        acquire.line,
                        acquire.col,
                        f"lock '{acquire.attr}' of {cls.name} is acquired "
                        "while already held; threading.Lock is not "
                        "reentrant, this blocks forever",
                    )
            for site in fn.calls:
                if not site.held:
                    continue
                held_quals = {
                    project.lock_qual(class_qual, attr): attr
                    for attr, _mode in site.held
                    if cls.lock_attrs.get(attr) not in _REENTRANT_KINDS
                }
                if not held_quals:
                    continue
                for callee in project.resolve_call(module, class_qual, site):
                    if callee.qualname.rsplit(".", 1)[0] != class_qual:
                        continue  # other-instance locks are distinct objects
                    taken = project.may_acquire(callee.qualname)
                    for lock_qual, attr in sorted(held_quals.items()):
                        if lock_qual in taken:
                            yield self.project_finding(
                                module.relpath,
                                site.line,
                                site.col,
                                f"call {'.'.join(site.path)}() may re-acquire "
                                f"non-reentrant lock '{attr}' of {cls.name} "
                                "already held here; threading.Lock "
                                "self-deadlocks",
                            )
