"""RJI006 — mutation of frozen paper constants.

ALL_CAPS module constants pin down paper-fixed quantities: the
construction bound ``K`` defaults, tolerance values, page sizes.
Reassigning one at runtime — through another module's namespace, a
``global`` declaration, a second top-level binding, or
``object.__setattr__`` on a frozen dataclass — silently changes
published numbers.  Constants are set once, at import time, in their
own module.

Bad::

    from repro.storage import pages
    pages.DEFAULT_PAGE_SIZE = 1 << 20

    def tune():
        global ANGLE_TOL
        ANGLE_TOL = 1e-6

Good::

    index = DiskRankedJoinIndex(core_index, page_size=1 << 20)
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..context import ModuleContext
from ..registry import Finding, Rule, register

__all__ = ["FrozenConstantRule"]

_CONST = re.compile(r"^[A-Z][A-Z0-9_]*$")

#: Methods where ``object.__setattr__`` legitimately initialises frozen
#: dataclass state.
_INIT_METHODS = frozenset(
    {"__init__", "__new__", "__post_init__", "__setstate__"}
)


def _assign_targets(node: ast.stmt) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        return [node.target]
    return []


def _const_attribute(target: ast.expr) -> str | None:
    """``pkg.CONST`` / ``obj.CONST`` attribute target name, if any."""
    if isinstance(target, ast.Attribute) and _CONST.match(target.attr):
        return target.attr
    return None


def _expression_nodes(stmt: ast.stmt):
    """Every expression node of one statement, skipping child statements."""
    stack = [
        child
        for child in ast.iter_child_nodes(stmt)
        if not isinstance(child, ast.stmt)
    ]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(
            child
            for child in ast.iter_child_nodes(node)
            if not isinstance(child, ast.stmt)
        )


@register
class FrozenConstantRule(Rule):
    """ALL_CAPS constants are bound once and never mutated."""

    id = "RJI006"
    name = "frozen-constants"
    description = (
        "paper constants (ALL_CAPS names, frozen dataclass fields) must "
        "not be reassigned, mutated through module attributes, declared "
        "global, or bypassed with object.__setattr__"
    )
    scope = "all"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        yield from self._check_toplevel_rebinding(ctx)
        yield from self._walk(ctx, ctx.tree.body, enclosing=None)

    def _check_toplevel_rebinding(
        self, ctx: ModuleContext
    ) -> Iterator[Finding]:
        bound: set[str] = set()
        for stmt in ctx.tree.body:
            for target in _assign_targets(stmt):
                if not (
                    isinstance(target, ast.Name) and _CONST.match(target.id)
                ):
                    continue
                if isinstance(stmt, ast.AugAssign):
                    yield self.finding(
                        ctx,
                        stmt.lineno,
                        stmt.col_offset,
                        f"augmented assignment mutates constant "
                        f"{target.id!r}",
                    )
                elif target.id in bound:
                    yield self.finding(
                        ctx,
                        stmt.lineno,
                        stmt.col_offset,
                        f"constant {target.id!r} is rebound; constants are "
                        "assigned exactly once",
                    )
                bound.add(target.id)

    def _walk(
        self,
        ctx: ModuleContext,
        stmts: list[ast.stmt],
        enclosing: str | None,
    ) -> Iterator[Finding]:
        """Recurse with the name of the innermost enclosing function."""
        for stmt in stmts:
            yield from self._check_stmt(ctx, stmt, enclosing)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._walk(ctx, stmt.body, enclosing=stmt.name)
            elif isinstance(stmt, ast.ClassDef):
                yield from self._walk(ctx, stmt.body, enclosing=None)
            else:
                for block in (
                    getattr(stmt, "body", None),
                    getattr(stmt, "orelse", None),
                    getattr(stmt, "finalbody", None),
                ):
                    if isinstance(block, list):
                        yield from self._walk(ctx, block, enclosing)
                for handler in getattr(stmt, "handlers", []) or []:
                    yield from self._walk(ctx, handler.body, enclosing)

    def _check_stmt(
        self, ctx: ModuleContext, stmt: ast.stmt, enclosing: str | None
    ) -> Iterator[Finding]:
        if isinstance(stmt, ast.Global):
            for name in stmt.names:
                if _CONST.match(name):
                    yield self.finding(
                        ctx,
                        stmt.lineno,
                        stmt.col_offset,
                        f"'global {name}' rebinds a module constant at "
                        "runtime",
                    )
        for target in _assign_targets(stmt):
            attr = _const_attribute(target)
            if attr is None:
                continue
            holder = target.value  # type: ignore[union-attr]
            if (
                isinstance(holder, ast.Name)
                and holder.id == "self"
                and enclosing in _INIT_METHODS
            ):
                continue
            yield self.finding(
                ctx,
                stmt.lineno,
                stmt.col_offset,
                f"assignment to attribute constant {attr!r} mutates frozen "
                "state outside its defining module",
            )
        yield from self._check_setattr(ctx, stmt, enclosing)

    def _check_setattr(
        self, ctx: ModuleContext, stmt: ast.stmt, enclosing: str | None
    ) -> Iterator[Finding]:
        # Walk only this statement's own expressions; nested statements
        # are visited by ``_walk`` with their correct enclosing function.
        for node in _expression_nodes(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr == "__setattr__"
                and isinstance(func.value, ast.Name)
                and func.value.id == "object"
            ):
                continue
            if enclosing in _INIT_METHODS:
                continue
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                "object.__setattr__ outside __init__/__post_init__ defeats "
                "a frozen dataclass",
            )
