"""RJI003 — unseeded randomness in library code.

Every experiment in the reproduction must replay bit-identically, and
the index's own probabilistic helpers (verification probing, workload
sampling) are part of published results.  Library code therefore takes
an explicit ``seed`` and builds a local ``np.random.default_rng(seed)``;
the process-global legacy generators and unseeded constructors are
banned under ``src/``.

Bad::

    rng = np.random.default_rng()
    value = np.random.uniform()
    import random

Good::

    rng = np.random.default_rng(seed)
    value = rng.uniform()
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..registry import Finding, Rule, register

__all__ = ["UnseededRandomnessRule"]

#: Legacy global-state numpy functions (``np.random.<name>(...)``).
_LEGACY_GLOBAL = frozenset(
    {
        "beta",
        "binomial",
        "choice",
        "exponential",
        "normal",
        "permutation",
        "poisson",
        "rand",
        "randint",
        "randn",
        "random",
        "random_sample",
        "ranf",
        "seed",
        "shuffle",
        "standard_normal",
        "uniform",
    }
)


def _is_np_random(node: ast.expr) -> bool:
    """Matches the ``np.random`` / ``numpy.random`` attribute chain."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


def _unseeded_call(node: ast.Call) -> bool:
    """A generator constructor invoked without a seed (or with ``None``)."""
    seedlike = list(node.args) + [
        kw.value for kw in node.keywords if kw.arg == "seed"
    ]
    if not seedlike:
        return True
    first = seedlike[0]
    return isinstance(first, ast.Constant) and first.value is None


@register
class UnseededRandomnessRule(Rule):
    """Library randomness must come from an explicitly seeded generator."""

    id = "RJI003"
    name = "unseeded-randomness"
    description = (
        "library code must seed np.random.default_rng explicitly and must "
        "not use the stdlib random module or numpy's legacy global state"
    )
    scope = "library"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        yield self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            "stdlib 'random' uses hidden global state; use "
                            "np.random.default_rng(seed)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        "stdlib 'random' uses hidden global state; use "
                        "np.random.default_rng(seed)",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_call(
        self, ctx: ModuleContext, node: ast.Call
    ) -> Iterator[Finding]:
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name in ("default_rng", "RandomState") and _unseeded_call(node):
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"{name}() without an explicit seed is not reproducible",
            )
            return
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _LEGACY_GLOBAL
            and _is_np_random(func.value)
        ):
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"np.random.{func.attr} mutates process-global state; use a "
                "seeded np.random.default_rng(seed) generator",
            )
