"""RJI009 — recorder call sites must use registered metric names.

Metric names are API: the bench regression gate diffs them between
runs, the Prometheus exporter publishes them, and dashboards query
them by exact string.  A typo'd name does not fail anything at runtime
— it silently forks the metric into two half-populated series, and the
regression gate reports the original as "removed" while the fork
starts a fresh history.

This rule pins every literal ``recorder.count/observe/timer/span``
name in library code to the registry in :mod:`repro.obs.names`
(static sets plus dynamic prefixes such as ``sql.op.``).  Call sites
whose first argument is not a string literal — the forwarding shims
inside ``repro.obs`` itself — are out of scope; the registry's
:func:`~repro.obs.names.iter_metric_calls` already skips them.

Bad::

    recorder.count("rji.querys")          # typo: silently forks the metric

Good::

    recorder.count("rji.queries")         # registered in repro/obs/names.py
"""

from __future__ import annotations

from typing import Iterator

from ...obs.names import iter_metric_calls, registered
from ..context import ModuleContext
from ..registry import Finding, Rule, register

__all__ = ["MetricNameRegistryRule"]


@register
class MetricNameRegistryRule(Rule):
    """Literal metric names must come from ``repro/obs/names.py``."""

    id = "RJI009"
    name = "metric-name-registry"
    description = (
        "recorder.count/observe/timer/span call sites must use a metric "
        "name registered in repro/obs/names.py (or extend a registered "
        "dynamic prefix)"
    )
    scope = "library"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in iter_metric_calls(ctx.tree):
            if call.name is None or registered(call.name):
                continue
            yield self.finding(
                ctx,
                call.line,
                call.col,
                f"unregistered metric name {call.name!r} in "
                f"recorder.{call.verb}(...); register it in "
                "repro/obs/names.py so the bench gate and exporters "
                "see one consistent vocabulary",
            )
