"""RJI001 — package-layering violations.

The RJI reproduction keeps a strict downward DAG (declared in
:mod:`repro.analysis.dag`): ``core`` holds the paper's algorithms and
imports nothing but ``errors``; engine layers (``storage``, ``relalg``,
``sql``...) build on it.  An upward import — say ``core`` reaching into
``storage`` — couples the algorithmic kernel to engine machinery and is
flagged wherever it appears, including inside function bodies.

Bad::

    # in src/repro/core/something.py
    from ..storage.diskindex import DiskRankedJoinIndex

Good::

    # in src/repro/storage/something.py
    from ..core.index import RankedJoinIndex
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..dag import LAYER_DAG, allowed_imports
from ..registry import Finding, Rule, register

__all__ = ["LayeringRule"]


def _top_component(dotted: str) -> str | None:
    """The ``repro`` subpackage named by an absolute dotted path."""
    parts = dotted.split(".")
    if parts[0] != "repro":
        return None
    if len(parts) == 1:
        return "root"
    return parts[1] if parts[1] in LAYER_DAG else "root"


@register
class LayeringRule(Rule):
    """Imports must follow the declared package dependency DAG."""

    id = "RJI001"
    name = "layering"
    description = (
        "library packages may import only from the packages the layer "
        "DAG declares below them (core -> {errors}, sql -> {relalg, "
        "core, errors}, ...)"
    )
    scope = "library"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        package = ctx.package
        if package is None:
            return
        allowed = allowed_imports(package)
        if allowed is None:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = _top_component(alias.name)
                    yield from self._judge(ctx, node, package, allowed, target)
            elif isinstance(node, ast.ImportFrom):
                targets = self._import_from_targets(
                    node, package, ctx.package_path or ()
                )
                for target in targets:
                    yield from self._judge(ctx, node, package, allowed, target)

    def _import_from_targets(
        self,
        node: ast.ImportFrom,
        package: str,
        package_path: tuple[str, ...],
    ) -> list[str | None]:
        """Packages a ``from ... import`` statement reaches into."""
        if node.level == 0:
            return [_top_component(node.module or "")]
        # A relative import at level L anchors at the module's own
        # package with L-1 components stripped; package_path holds the
        # components between ``repro`` and the file, so stripping all of
        # them (and no more) lands on the ``repro`` root itself.
        strip = node.level - 1
        if strip > len(package_path):
            return ["root"]  # escapes the repository layout
        anchor = package_path[: len(package_path) - strip]
        full = anchor + tuple(node.module.split(".") if node.module else ())
        if full:
            head = full[0]
            return [head if head in LAYER_DAG else "root"]
        # ``from repro-root import name, ...``: each alias is a package.
        return [
            alias.name if alias.name in LAYER_DAG else "root"
            for alias in node.names
        ]

    def _judge(
        self,
        ctx: ModuleContext,
        node: ast.stmt,
        package: str,
        allowed: frozenset[str],
        target: str | None,
    ) -> Iterator[Finding]:
        if target is None or target == package or target in allowed:
            return
        if target == "root":
            what = "the repro root layer"
        else:
            what = f"repro.{target}"
        permitted = ", ".join(sorted(allowed)) or "nothing"
        yield self.finding(
            ctx,
            node.lineno,
            node.col_offset,
            f"package '{package}' may not import {what} "
            f"(DAG allows only: {permitted})",
        )
