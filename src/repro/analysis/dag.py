"""The declared package-layering DAG of the ``repro`` codebase.

Edges point downward: a package may import only from the packages it
maps to (plus itself).  ``core`` holds the paper's algorithms and must
stay free of engine concerns — it sees nothing but ``errors`` — while
``experiments`` at the top may reach every substrate it benchmarks.
Modules directly under ``src/repro`` (``cli.py``, ``__init__.py``) form
the unrestricted ``root`` application layer.

RJI001 checks every import in library code against this table, so
adding a new package means declaring its dependencies here first.
"""

from __future__ import annotations

__all__ = ["LAYER_DAG", "allowed_imports"]

#: package -> packages it may import from (itself is always allowed).
LAYER_DAG: dict[str, frozenset[str]] = {
    "errors": frozenset(),
    # ``obs`` carries the request-tracing context the serving tier
    # threads through core/storage, yet depends only on ``errors``:
    # even ``python -m repro.obs top`` keeps this edge clean by
    # speaking the length-prefixed wire protocol over a raw socket
    # instead of importing ``serve``.
    "obs": frozenset({"errors"}),
    # ``analysis`` reads the metric-name registry (RJI009); ``obs`` has
    # no analysis dependency, so the edge cannot cycle.
    "analysis": frozenset({"errors", "obs"}),
    "core": frozenset({"errors", "obs"}),
    # ``faults`` wraps storage objects via duck-typed ``.faults`` hooks,
    # so it needs no storage import (and storage needs no faults import).
    "faults": frozenset({"errors", "obs"}),
    "baselines": frozenset({"core", "errors"}),
    "relalg": frozenset({"core", "errors"}),
    # The zero-copy interaction rides the existing storage -> core edge:
    # ``storage.diskindex`` imports ``core.hotcache`` (the descent
    # cache) and hands read-only mapping views to
    # ``core.regionstore.from_columns``; ``core`` never learns that
    # mmap-backed callers exist, so no reverse edge is needed.
    "storage": frozenset({"core", "errors", "obs"}),
    "rtree": frozenset({"core", "errors", "storage"}),
    "datagen": frozenset({"core", "errors", "relalg"}),
    "sql": frozenset({"core", "errors", "obs", "relalg"}),
    # ``serve`` wraps any IndexService; it needs only the core contract
    # types, the error taxonomy, and the recorder surface.
    "serve": frozenset({"core", "errors", "obs"}),
    "bench": frozenset(
        {"core", "datagen", "errors", "faults", "obs", "serve", "storage"}
    ),
    "experiments": frozenset(
        {
            "baselines",
            "core",
            "datagen",
            "errors",
            "relalg",
            "rtree",
            "sql",
            "storage",
        }
    ),
}


def allowed_imports(package: str) -> frozenset[str] | None:
    """Packages ``package`` may import from, or ``None`` if unrestricted.

    ``root`` (modules directly under ``src/repro``) and packages absent
    from the DAG are unrestricted — the latter so that a brand-new
    package fails loudly in tests for the DAG table rather than silently
    linting every import as a violation.
    """
    if package == "root":
        return None
    return LAYER_DAG.get(package)
