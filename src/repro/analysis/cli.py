"""The ``python -m repro.analysis`` command line.

Exit codes: ``0`` clean, ``1`` findings reported, ``2`` usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baseline import filter_baseline, load_baseline, write_baseline
from .registry import all_rules, select_rules
from .reporters import render_json, render_text
from .runner import changed_python_files, lint_paths

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "rjilint: repository-specific static analysis for the Ranked "
            "Join Indices reproduction (layering DAG, float-comparison "
            "tolerances, seeded randomness, exception hygiene, __all__ "
            "consistency, frozen constants, and the whole-program lock "
            "discipline / lock order / error contract checks)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only files modified vs HEAD (plus untracked files)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings to a baseline file and exit 0",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not update the whole-program index cache",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    return parser


def _split(value: str | None) -> list[str] | None:
    if value is None:
        return None
    return [part.strip().upper() for part in value.split(",") if part.strip()]


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name} [{rule.scope}]")
            print(f"        {rule.description}")
        return 0

    try:
        rules = select_rules(_split(args.select), _split(args.ignore))
    except KeyError as exc:
        print(f"rjilint: {exc.args[0]}", file=sys.stderr)
        return 2

    root = Path.cwd()
    paths: list[str | Path] = list(args.paths)
    if args.changed:
        existing, missing = changed_python_files(root)
        for name in missing:
            print(f"rjilint: skipping deleted/renamed path: {name}")
        paths = list(existing)
        if not paths:
            print("rjilint: no python files changed vs HEAD")
            return 0
    else:
        bad = [p for p in paths if not Path(p).exists()]
        if bad:
            for p in bad:
                print(f"rjilint: no such path: {p}", file=sys.stderr)
            return 2

    findings = lint_paths(
        paths, root=root, rules=rules, use_cache=not args.no_cache
    )

    if args.write_baseline:
        target = Path(args.write_baseline)
        write_baseline(target, findings)
        print(
            f"rjilint: wrote baseline with {len(findings)} finding(s) "
            f"to {target}"
        )
        return 0

    if args.baseline:
        try:
            baseline = load_baseline(Path(args.baseline))
        except OSError as exc:
            print(f"rjilint: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"rjilint: bad baseline file: {exc}", file=sys.stderr)
            return 2
        findings = filter_baseline(findings, baseline)

    render = render_json if args.format == "json" else render_text
    print(render(findings))
    return 1 if findings else 0
