"""Collect files, run rules, filter suppressions.

The runner is the programmatic face of rjilint: :func:`lint_paths` for
directories/files, :func:`lint_source` for in-memory snippets (used by
the rule tests), and :func:`changed_files` for the fast ``--changed``
pre-commit mode.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

from . import rules as _builtin_rules  # noqa: F401 - populates the registry
from .context import ModuleContext
from .registry import Finding, Rule, all_rules

__all__ = [
    "changed_files",
    "collect_files",
    "lint_context",
    "lint_paths",
    "lint_source",
]

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}


def collect_files(paths: list[str | Path], root: Path) -> list[Path]:
    """Every ``.py`` file under the given paths, stable order."""
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = set(candidate.parts)
                if parts & _SKIP_DIRS:
                    continue
                if any(part.endswith(".egg-info") for part in candidate.parts):
                    continue
                out.append(candidate)
        elif path.suffix == ".py":
            out.append(path)
    return out


def lint_context(
    ctx: ModuleContext, rules: list[Rule] | None = None
) -> list[Finding]:
    """Run (a subset of) the registry over one parsed module."""
    chosen = all_rules() if rules is None else rules
    findings: list[Finding] = []
    for rule in chosen:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if ctx.suppressions.active(finding.rule, finding.line):
                continue
            findings.append(finding)
    return sorted(findings)


def lint_source(
    source: str,
    relpath: str = "src/repro/core/snippet.py",
    rules: list[Rule] | None = None,
) -> list[Finding]:
    """Lint an in-memory snippet as if it lived at ``relpath``."""
    try:
        ctx = ModuleContext.from_source(source, relpath)
    except SyntaxError as exc:
        return [_parse_error(relpath, exc)]
    return lint_context(ctx, rules)


def lint_paths(
    paths: list[str | Path],
    root: Path | None = None,
    rules: list[Rule] | None = None,
) -> list[Finding]:
    """Lint every python file under ``paths``; findings sorted."""
    base = Path.cwd() if root is None else root
    findings: list[Finding] = []
    for path in collect_files(paths, base):
        try:
            ctx = ModuleContext.from_path(path, base)
        except SyntaxError as exc:
            rel = _relativize(path, base)
            findings.append(_parse_error(rel, exc))
            continue
        findings.extend(lint_context(ctx, rules))
    return sorted(findings)


def changed_files(root: Path) -> list[str]:
    """Python files modified vs ``HEAD`` plus untracked ones.

    The fast path for local iteration (``--changed``): lints only what a
    commit would actually touch.  Returns repo-relative paths.
    """
    names: set[str] = set()
    for args in (
        ["git", "diff", "--name-only", "HEAD", "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        proc = subprocess.run(
            args, cwd=root, capture_output=True, text=True, check=True
        )
        names.update(line.strip() for line in proc.stdout.splitlines())
    return sorted(
        name
        for name in names
        if name.endswith(".py") and (root / name).exists()
    )


def _relativize(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _parse_error(relpath: str, exc: SyntaxError) -> Finding:
    return Finding(
        path=relpath,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        rule="RJI000",
        message=f"syntax error: {exc.msg}",
    )
