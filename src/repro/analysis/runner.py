"""Collect files, run rules, filter suppressions.

The runner is the programmatic face of rjilint: :func:`lint_paths` for
directories/files, :func:`lint_source` for in-memory snippets (used by
the rule tests), and :func:`changed_files` for the fast ``--changed``
pre-commit mode.

Per-file rules (scope ``library``/``all``) run on every collected file.
Project-scope rules (RJI011–RJI013) run once per invocation over the
whole-program index of the ``src/repro`` tree — they are triggered when
the lint set touches that tree, regardless of which subset of its files
was passed, because a cross-module property cannot be checked on a
slice.  Their findings pass through the same per-line suppression
filter as everything else.
"""

from __future__ import annotations

import hashlib
import pickle
import subprocess
from pathlib import Path

from . import rules as _builtin_rules  # noqa: F401 - populates the registry
from .context import ModuleContext
from .registry import Finding, ProjectRule, Rule, all_rules, known_rule_ids

__all__ = [
    "changed_files",
    "changed_python_files",
    "collect_files",
    "lint_context",
    "lint_paths",
    "lint_source",
    "run_project_rules",
]

#: ``fixtures`` hides the deliberately-broken rule-test packages under
#: ``tests/analysis/fixtures`` from normal lint runs.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist", "fixtures"}

#: Bump when per-file findings change shape; stale caches are ignored.
_FINDINGS_FORMAT = 1


def _findings_cache_path(root: Path) -> Path:
    return root / ".rjilint_cache" / "findings.pkl"


def _load_findings_cache(path: Path) -> dict:
    try:
        with path.open("rb") as handle:
            payload = pickle.load(handle)
        if payload.get("format") != _FINDINGS_FORMAT:
            return {}
        entries = payload.get("entries", {})
        return entries if isinstance(entries, dict) else {}
    except Exception:  # noqa: BLE001 - the cache is advisory; relint on any damage
        return {}


def _store_findings_cache(path: Path, entries: dict) -> None:
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        with tmp.open("wb") as handle:
            pickle.dump({"format": _FINDINGS_FORMAT, "entries": entries}, handle)
        tmp.replace(path)
    except OSError:
        pass  # read-only checkout: run uncached


def collect_files(paths: list[str | Path], root: Path) -> list[Path]:
    """Every ``.py`` file under the given paths, stable order."""
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = set(candidate.parts)
                if parts & _SKIP_DIRS:
                    continue
                if any(part.endswith(".egg-info") for part in candidate.parts):
                    continue
                out.append(candidate)
        elif path.suffix == ".py":
            out.append(path)
    return out


def lint_context(
    ctx: ModuleContext, rules: list[Rule] | None = None
) -> list[Finding]:
    """Run (a subset of) the registry over one parsed module."""
    chosen = all_rules() if rules is None else rules
    findings: list[Finding] = _unknown_suppressions(ctx)
    for rule in chosen:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if ctx.suppressions.active(finding.rule, finding.line):
                continue
            findings.append(finding)
    return sorted(findings)


def _unknown_suppressions(ctx: ModuleContext) -> list[Finding]:
    """RJI000 findings for suppression comments naming unknown rules.

    A typo'd ``# rjilint: disable=RJI0011`` would otherwise silently
    suppress nothing while looking like it suppressed something.
    """
    known = known_rule_ids()
    out: list[Finding] = []
    for line, ids in sorted(ctx.suppressions.by_line.items()):
        for rule_id in sorted(ids - known):
            out.append(
                Finding(
                    path=ctx.relpath,
                    line=line,
                    col=0,
                    rule="RJI000",
                    message=f"unknown rule id {rule_id} in suppression comment",
                )
            )
    for rule_id in sorted(ctx.suppressions.whole_file - known):
        out.append(
            Finding(
                path=ctx.relpath,
                line=1,
                col=0,
                rule="RJI000",
                message=f"unknown rule id {rule_id} in disable-file directive",
            )
        )
    return out


def lint_source(
    source: str,
    relpath: str = "src/repro/core/snippet.py",
    rules: list[Rule] | None = None,
) -> list[Finding]:
    """Lint an in-memory snippet as if it lived at ``relpath``.

    Project-scope rules run only when passed explicitly in ``rules``;
    the snippet then forms a one-module project of its own.  With the
    default ``rules=None`` only the per-file registry runs, so existing
    per-file rule tests see no cross-module noise.
    """
    try:
        ctx = ModuleContext.from_source(source, relpath)
    except SyntaxError as exc:
        return [_parse_error(relpath, exc)]
    chosen = [] if rules is None else rules
    findings = lint_context(ctx, rules)
    project_rules = [r for r in chosen if isinstance(r, ProjectRule)]
    if project_rules:
        from .model import ProjectIndex, extract_module

        summary = extract_module(ctx)
        index = ProjectIndex({summary.module: summary})
        findings.extend(_project_findings(project_rules, index))
    return sorted(findings)


def lint_paths(
    paths: list[str | Path],
    root: Path | None = None,
    rules: list[Rule] | None = None,
    *,
    project: bool = True,
    use_cache: bool = True,
) -> list[Finding]:
    """Lint every python file under ``paths``; findings sorted.

    When the collected set touches ``<root>/src/repro`` and any
    project-scope rules are selected, the whole-program pass runs once
    on top of the per-file pass (disable with ``project=False``).

    Per-file results are cached under ``.rjilint_cache/`` keyed on the
    file's content hash and the selected rule ids, so a warm run
    re-lints only edited files.  Like the project-index cache, the
    findings cache is advisory: any load failure falls back to a full
    re-lint.
    """
    base = Path.cwd() if root is None else root
    chosen = all_rules() if rules is None else rules
    per_file_key = tuple(
        sorted(r.id for r in chosen if not isinstance(r, ProjectRule))
    )
    cache_file = _findings_cache_path(base)
    cached = _load_findings_cache(cache_file) if use_cache else {}
    fresh: dict[str, tuple[str, tuple[str, ...], list[Finding]]] = {}
    misses = 0
    findings: list[Finding] = []
    files = collect_files(paths, base)
    for path in files:
        rel = _relativize(path, base)
        try:
            raw = path.read_bytes()
        except OSError:
            continue  # vanished between collection and read (e.g. rename)
        digest = hashlib.sha256(raw).hexdigest()
        entry = cached.get(rel)
        if (
            entry is not None
            and entry[0] == digest
            and entry[1] == per_file_key
        ):
            file_findings = entry[2]
        else:
            try:
                ctx = ModuleContext.from_source(raw.decode("utf-8"), rel)
            except SyntaxError as exc:
                file_findings = [_parse_error(rel, exc)]
            else:
                file_findings = lint_context(ctx, chosen)
            misses += 1
        fresh[rel] = (digest, per_file_key, file_findings)
        findings.extend(file_findings)
    if use_cache and misses:
        _store_findings_cache(cache_file, {**cached, **fresh})
    project_rules = [r for r in chosen if isinstance(r, ProjectRule)]
    if project and project_rules and _touches_library(files, base):
        findings.extend(
            run_project_rules(base, project_rules, use_cache=use_cache)
        )
    return sorted(findings)


def run_project_rules(
    root: Path,
    rules: list[Rule] | None = None,
    *,
    use_cache: bool = True,
) -> list[Finding]:
    """Run the project-scope rules over ``<root>/src/repro``.

    Returns ``[]`` when there is no library tree or no project rules are
    selected.  Findings are filtered through the suppression index of
    the module each one lands in.
    """
    chosen = [
        rule
        for rule in (all_rules() if rules is None else rules)
        if isinstance(rule, ProjectRule)
    ]
    if not chosen:
        return []
    from .model import build_project_index

    index = build_project_index(root, use_cache=use_cache)
    if index is None:
        return []
    return sorted(_project_findings(chosen, index))


def _project_findings(rules: list[ProjectRule], index) -> list[Finding]:
    suppressions = {
        module.relpath: module.suppressions
        for module in index.modules.values()
    }
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check_project(index):
            supp = suppressions.get(finding.path)
            if supp is not None and supp.active(finding.rule, finding.line):
                continue
            findings.append(finding)
    return findings


def _touches_library(files: list[Path], root: Path) -> bool:
    tree = (root / "src" / "repro").resolve()
    for path in files:
        try:
            path.resolve().relative_to(tree)
        except ValueError:
            continue
        return True
    return False


def changed_files(root: Path) -> list[str]:
    """Python files modified vs ``HEAD`` plus untracked ones.

    The fast path for local iteration (``--changed``): lints only what a
    commit would actually touch.  Returns repo-relative paths; deleted
    or renamed-away files are dropped (see :func:`changed_python_files`).
    """
    existing, _missing = changed_python_files(root)
    return existing


def changed_python_files(root: Path) -> tuple[list[str], list[str]]:
    """``(existing, missing)`` python files modified vs ``HEAD``.

    ``missing`` holds paths git reports as changed that no longer exist
    on disk — deletions and the old halves of renames.  Callers note
    and skip them rather than failing the run.  Outside a git checkout
    (or without a ``git`` binary) both lists are empty.
    """
    names: set[str] = set()
    for args in (
        ["git", "diff", "--name-only", "HEAD", "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                args, cwd=root, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError):
            return ([], [])
        names.update(line.strip() for line in proc.stdout.splitlines())
    python = sorted(name for name in names if name.endswith(".py"))
    existing = [name for name in python if (root / name).exists()]
    missing = [name for name in python if not (root / name).exists()]
    return (existing, missing)


def _relativize(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _parse_error(relpath: str, exc: SyntaxError) -> Finding:
    return Finding(
        path=relpath,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        rule="RJI000",
        message=f"syntax error: {exc.msg}",
    )
