"""Baseline files: adopt rjilint on a codebase with known findings.

A baseline is a JSON snapshot of accepted findings.  ``--write-baseline
<file>`` records the current findings; later runs with ``--baseline
<file>`` report only findings *not* in the snapshot, so new violations
fail CI while the acknowledged backlog does not.  Entries are keyed by
``(path, rule, message)`` — deliberately **without** the line number, so
unrelated edits that shift a finding up or down the file do not
resurrect it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from .registry import Finding

__all__ = [
    "BASELINE_FORMAT",
    "baseline_key",
    "filter_baseline",
    "load_baseline",
    "write_baseline",
]

#: Bump when the entry shape changes; mismatched files are rejected.
BASELINE_FORMAT = 1

BaselineKey = tuple[str, str, str]


def baseline_key(finding: Finding) -> BaselineKey:
    """The line-independent identity of a finding."""
    return (finding.path, finding.rule, finding.message)


def load_baseline(path: Path) -> frozenset[BaselineKey]:
    """Parse a baseline file (raises ``ValueError`` when malformed)."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != BASELINE_FORMAT:
        raise ValueError(
            f"unsupported baseline format (want {BASELINE_FORMAT})"
        )
    entries = payload.get("findings")
    if not isinstance(entries, list):
        raise ValueError("baseline 'findings' must be a list")
    keys: set[BaselineKey] = set()
    for entry in entries:
        if not isinstance(entry, dict):
            raise ValueError("baseline entries must be objects")
        try:
            keys.add((entry["path"], entry["rule"], entry["message"]))
        except KeyError as exc:
            raise ValueError(f"baseline entry missing {exc.args[0]}") from exc
    return frozenset(keys)


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Snapshot ``findings`` to ``path`` (sorted, deduplicated)."""
    keys = sorted({baseline_key(f) for f in findings})
    payload = {
        "format": BASELINE_FORMAT,
        "findings": [
            {"path": p, "rule": r, "message": m} for p, r, m in keys
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def filter_baseline(
    findings: Iterable[Finding], baseline: frozenset[BaselineKey]
) -> list[Finding]:
    """Findings not acknowledged by the baseline, order preserved."""
    return [f for f in findings if baseline_key(f) not in baseline]
