"""Parsed-module context shared by every rule.

One :class:`ModuleContext` bundles a file's source, its AST, its place
in the package layering (which ``repro`` subpackage, library vs test),
and the suppression directives found in its comments, so each rule gets
everything it needs without re-parsing.

Suppression syntax (comment anywhere on the offending line)::

    risky_expression()  # rjilint: disable=RJI002
    other_thing()       # rjilint: disable=RJI002,RJI004

and, in the first comment block of a file, a whole-file directive::

    # rjilint: disable-file=RJI005
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

__all__ = ["ModuleContext", "SuppressionIndex", "comment_lines"]

_DIRECTIVE = re.compile(
    r"rjilint:\s*(?P<kind>disable(?:-file)?)\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+)"
)


def comment_lines(source: str) -> dict[int, str]:
    """Map of ``line -> comment text`` using the tokenizer.

    Tokenizing (rather than regex over raw lines) keeps ``#`` characters
    inside string literals from being mistaken for comments.  A file
    that fails to tokenize yields no comments; the parse error is
    reported separately by the runner.
    """
    comments: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    return comments


@dataclass(frozen=True)
class SuppressionIndex:
    """Per-line and whole-file rule suppressions for one module."""

    by_line: dict[int, frozenset[str]] = field(default_factory=dict)
    whole_file: frozenset[str] = frozenset()

    @classmethod
    def from_comments(cls, comments: dict[int, str]) -> "SuppressionIndex":
        by_line: dict[int, frozenset[str]] = {}
        whole_file: set[str] = set()
        for line, text in comments.items():
            match = _DIRECTIVE.search(text)
            if match is None:
                continue
            rules = frozenset(
                part.strip().upper()
                for part in match.group("rules").split(",")
                if part.strip()
            )
            if match.group("kind") == "disable-file":
                whole_file |= rules
            else:
                by_line[line] = by_line.get(line, frozenset()) | rules
        return cls(by_line=by_line, whole_file=frozenset(whole_file))

    def active(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is suppressed at ``line``."""
        if rule_id in self.whole_file:
            return True
        return rule_id in self.by_line.get(line, frozenset())


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    relpath: str
    source: str
    tree: ast.Module
    comments: dict[int, str]
    suppressions: SuppressionIndex
    package: str | None
    package_path: tuple[str, ...] | None
    is_library: bool
    is_test: bool

    @classmethod
    def from_source(cls, source: str, relpath: str) -> "ModuleContext":
        """Build a context from source text (raises ``SyntaxError``)."""
        posix = PurePosixPath(relpath).as_posix()
        tree = ast.parse(source, filename=posix)
        comments = comment_lines(source)
        return cls(
            relpath=posix,
            source=source,
            tree=tree,
            comments=comments,
            suppressions=SuppressionIndex.from_comments(comments),
            package=_package_of(posix),
            package_path=_package_path_of(posix),
            is_library=_is_library(posix),
            is_test=_is_test(posix),
        )

    @classmethod
    def from_path(cls, path: Path, root: Path) -> "ModuleContext":
        """Build a context for a file, with paths reported ``root``-relative."""
        try:
            rel = path.resolve().relative_to(root.resolve())
        except ValueError:
            rel = path
        source = path.read_text(encoding="utf-8")
        return cls.from_source(source, rel.as_posix())


def _repro_parts(posix: str) -> tuple[str, ...] | None:
    """Path components below ``src/repro``, or ``None`` outside it."""
    parts = PurePosixPath(posix).parts
    for i in range(len(parts) - 1):
        if parts[i] == "src" and parts[i + 1] == "repro":
            return parts[i + 2 :]
    return None


def _package_of(posix: str) -> str | None:
    """The ``repro`` subpackage a file belongs to.

    ``src/repro/core/sweep.py`` -> ``core``; a module directly under
    ``src/repro`` is the unrestricted ``root`` layer, except
    ``errors.py`` which is the bottom ``errors`` layer.
    """
    below = _repro_parts(posix)
    if below is None or not below:
        return None
    if len(below) == 1:
        return "errors" if below[0] == "errors.py" else "root"
    return below[0]


def _package_path_of(posix: str) -> tuple[str, ...] | None:
    """Directory components between ``src/repro`` and the file itself.

    ``src/repro/analysis/rules/layering.py`` -> ``("analysis", "rules")``;
    a module directly under ``src/repro`` -> ``()``.  Used to resolve
    relative imports: a ``from ..x import`` at nesting depth two stays
    inside its own package rather than reaching the ``repro`` root.
    """
    below = _repro_parts(posix)
    if below is None or not below:
        return None
    return below[:-1]


def _is_library(posix: str) -> bool:
    return _repro_parts(posix) is not None


def _is_test(posix: str) -> bool:
    parts = PurePosixPath(posix).parts
    stem = PurePosixPath(posix).stem
    return "tests" in parts or stem.startswith("test_") or stem == "conftest"
