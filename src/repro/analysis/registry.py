"""Rule protocol, findings, and the pluggable rule registry.

A rule is a small object with an ``id`` (``RJI001``...), a ``scope``
declaring which files it applies to, and a ``check`` method yielding
:class:`Finding` objects.  Rules self-register with the
:func:`register` decorator; the CLI and test-suite enumerate them
through :func:`all_rules` so new rules need no wiring beyond their
module being imported by :mod:`repro.analysis.rules`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Iterable, Iterator, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .context import ModuleContext
    from .model import ProjectIndex

__all__ = [
    "Finding",
    "ProjectRule",
    "Rule",
    "all_rules",
    "get_rule",
    "known_rule_ids",
    "register",
    "select_rules",
]

#: Files a rule applies to.  ``library`` = modules under ``src/repro``
#: that are not tests; ``all`` = every linted file including tests;
#: ``project`` = the rule runs once over the whole-program
#: :class:`~repro.analysis.model.ProjectIndex`, not per file.
SCOPES = ("library", "all", "project")


@dataclass(frozen=True, order=True)
class Finding:
    """One violation: where it is, which rule, and what is wrong."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class Rule(abc.ABC):
    """Base class for rjilint rules."""

    id: ClassVar[str]
    name: ClassVar[str]
    description: ClassVar[str]
    scope: ClassVar[str] = "library"

    @abc.abstractmethod
    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        """Yield findings for one parsed module."""

    def applies_to(self, ctx: "ModuleContext") -> bool:
        """Whether this rule runs on ``ctx`` given its declared scope."""
        if self.scope == "all":
            return True
        return ctx.is_library and not ctx.is_test

    def finding(
        self, ctx: "ModuleContext", line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            path=ctx.relpath, line=line, col=col, rule=self.id, message=message
        )


class ProjectRule(Rule):
    """Base class for whole-program rules (scope ``project``).

    Project rules run once per analysis over the
    :class:`~repro.analysis.model.ProjectIndex` instead of once per
    file; their findings are still filtered through the per-line
    suppressions of the file each finding lands in.
    """

    scope: ClassVar[str] = "project"

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        """Project rules produce nothing in the per-file pass."""
        return iter(())

    def applies_to(self, ctx: "ModuleContext") -> bool:
        return False

    @abc.abstractmethod
    def check_project(self, project: "ProjectIndex") -> Iterator[Finding]:
        """Yield findings for the whole program."""

    def project_finding(
        self, relpath: str, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            path=relpath, line=line, col=col, rule=self.id, message=message
        )


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and add a rule to the registry."""
    rule = rule_cls()
    if rule.scope not in SCOPES:
        raise ValueError(f"rule {rule.id}: unknown scope {rule.scope!r}")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id (raises ``KeyError`` for unknown ids)."""
    return _REGISTRY[rule_id]


def known_rule_ids() -> frozenset[str]:
    """Every registered rule id plus the tool's own ``RJI000``."""
    return frozenset(_REGISTRY) | {"RJI000"}


def select_rules(
    select: Iterable[str] | None = None, ignore: Iterable[str] | None = None
) -> list[Rule]:
    """Registry subset after ``--select`` / ``--ignore`` filtering."""
    chosen = all_rules()
    if select is not None:
        wanted = set(select)
        unknown = wanted - set(_REGISTRY)
        if unknown:
            raise KeyError(f"unknown rule ids: {sorted(unknown)}")
        chosen = [rule for rule in chosen if rule.id in wanted]
    if ignore is not None:
        dropped = set(ignore)
        unknown = dropped - set(_REGISTRY)
        if unknown:
            raise KeyError(f"unknown rule ids: {sorted(unknown)}")
        chosen = [rule for rule in chosen if rule.id not in dropped]
    return chosen
