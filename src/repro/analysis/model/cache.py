"""Content-hash-keyed incremental caching of the project index.

:func:`build_project_index` parses every ``src/repro`` module below a
root exactly once per *content hash*: a summary extracted for a file
whose SHA-256 digest is unchanged is reused from the on-disk cache
(default ``<root>/.rjilint_cache/``), so a warm ``--changed`` run
re-extracts only the modules a commit actually touched.  Cross-module
fixpoints (call graph, escape sets, lock-order edges) are always
recomputed from the summaries — they are cheap, and it keeps the cache
a pure function of file contents.

Cache hygiene: the pickle payload carries a format version; any load
failure (missing, torn, stale format, class drift) silently falls back
to a full re-extraction — the cache is advisory, never authoritative.

The builder reports ``analysis.files_indexed`` / ``analysis.cache_hits``
/ ``analysis.cache_misses`` through an optional
:class:`~repro.obs.recorder.Recorder` (names registered in
``repro/obs/names.py``).
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path

from ...obs import NULL_RECORDER, Recorder
from ..context import ModuleContext
from .project import ProjectIndex
from .summary import ModuleSummary, extract_module

__all__ = ["CACHE_FORMAT", "build_project_index", "cache_path", "file_digest"]

#: Bump when summary dataclasses change shape; stale caches are ignored.
CACHE_FORMAT = 1

_CACHE_DIR = ".rjilint_cache"
_CACHE_FILE = "summaries.pkl"


def cache_path(root: Path) -> Path:
    return root / _CACHE_DIR / _CACHE_FILE


def file_digest(source: bytes) -> str:
    return hashlib.sha256(source).hexdigest()


def _load_cached(path: Path) -> dict[str, ModuleSummary]:
    try:
        with path.open("rb") as handle:
            payload = pickle.load(handle)
        if payload.get("format") != CACHE_FORMAT:
            return {}
        summaries = payload.get("summaries", {})
        return summaries if isinstance(summaries, dict) else {}
    except Exception:  # noqa: BLE001 - the cache is advisory; rebuild on any damage
        return {}


def _store_cached(path: Path, summaries: dict[str, ModuleSummary]) -> None:
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        with tmp.open("wb") as handle:
            pickle.dump(
                {"format": CACHE_FORMAT, "summaries": summaries}, handle
            )
        tmp.replace(path)
    except OSError:
        pass  # read-only checkout: run uncached


def _repro_files(root: Path) -> list[Path]:
    tree = root / "src" / "repro"
    if not tree.is_dir():
        return []
    return sorted(
        candidate
        for candidate in tree.rglob("*.py")
        if "__pycache__" not in candidate.parts
    )


def build_project_index(
    root: Path,
    *,
    use_cache: bool = True,
    recorder: Recorder = NULL_RECORDER,
) -> ProjectIndex | None:
    """Index the ``src/repro`` tree under ``root`` (None when absent).

    Summaries are keyed by relpath and reused when the file's digest
    matches the cache; syntactically broken files are skipped (the
    per-file runner reports the parse error separately).
    """
    files = _repro_files(root)
    if not files:
        return None
    cache_file = cache_path(root)
    cached = _load_cached(cache_file) if use_cache else {}
    summaries: dict[str, ModuleSummary] = {}
    hits = 0
    misses = 0
    for path in files:
        try:
            raw = path.read_bytes()
        except OSError:
            continue
        digest = file_digest(raw)
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        previous = cached.get(rel)
        if previous is not None and previous.digest == digest:
            summaries[previous.module] = previous
            hits += 1
            continue
        try:
            ctx = ModuleContext.from_source(
                raw.decode("utf-8", errors="replace"), rel
            )
        except SyntaxError:
            continue
        summary = extract_module(ctx, digest)
        summaries[summary.module] = summary
        misses += 1
    if use_cache and misses:
        _store_cached(
            cache_file, {s.relpath: s for s in summaries.values()}
        )
    if recorder.enabled:
        recorder.count("analysis.files_indexed", len(summaries))
        recorder.count("analysis.cache_hits", hits)
        recorder.count("analysis.cache_misses", misses)
    return ProjectIndex(summaries)
