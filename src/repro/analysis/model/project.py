"""The whole-program index: modules, classes, call graph, fixpoints.

:class:`ProjectIndex` stitches the per-module summaries of
:mod:`repro.analysis.model.summary` into project-wide views:

* a class table with base-class resolution (method lookup walks the
  linearized base chain, project classes only);
* best-effort call resolution — ``self.method()``, ``self.attr.method()``
  through inferred attribute types, imported functions and classes
  (constructor calls resolve to ``__init__`` + ``__post_init__``), and
  ``@property`` reads;
* an interprocedural *escape* analysis: which exception types each
  function can surface, propagated through the call graph to a fixpoint
  with ``except`` absorption by subclass (RJI013);
* the global lock-acquisition-order graph: an edge ``L1 -> L2`` means
  some path acquires ``L2`` while holding ``L1`` (RJI012).

Resolution is deliberately conservative: an unresolvable call or raise
contributes nothing, so every reported finding traces to code the model
actually understood.
"""

from __future__ import annotations

import builtins
from dataclasses import dataclass

from .summary import CallSite, ClassSummary, FunctionSummary, ModuleSummary

__all__ = ["LockEdge", "ProjectIndex", "RaiseOrigin"]

#: External callables modelled as raising outside their signature.  The
#: struct pack/unpack family is matched by call *tail* so precompiled
#: ``struct.Struct`` instances are covered too.
_STRUCT_TAILS = frozenset({"unpack", "unpack_from", "pack", "pack_into"})
_STRUCT_ERROR = "struct.error"

#: Hierarchy facts for exception types the AST cannot see.
_KNOWN_EXTERNAL_BASES: dict[str, tuple[str, ...]] = {
    "struct.error": ("builtins.Exception", "builtins.BaseException"),
    "json.JSONDecodeError": (
        "builtins.ValueError",
        "builtins.Exception",
        "builtins.BaseException",
    ),
}


@dataclass(frozen=True)
class RaiseOrigin:
    """Where an escaping exception type was first introduced."""

    relpath: str
    line: int


@dataclass(frozen=True)
class LockEdge:
    """One observed ordering: ``held`` was held while taking ``acquired``."""

    held: str
    acquired: str
    relpath: str
    line: int


class ProjectIndex:
    """Cross-module views over a set of :class:`ModuleSummary` objects."""

    def __init__(self, summaries: dict[str, ModuleSummary]):
        #: module dotted name -> summary
        self.modules = dict(sorted(summaries.items()))
        #: class qualname -> (owning module, class summary)
        self.classes: dict[str, tuple[ModuleSummary, ClassSummary]] = {}
        #: function qualname -> (owning module, class qual or None, summary)
        self.functions: dict[
            str, tuple[ModuleSummary, str | None, FunctionSummary]
        ] = {}
        for module in self.modules.values():
            for cls in module.classes.values():
                self.classes[cls.qualname] = (module, cls)
                for fn in cls.methods.values():
                    self.functions[fn.qualname] = (module, cls.qualname, fn)
            for fn in module.functions.values():
                self.functions[fn.qualname] = (module, None, fn)
        self._ancestor_cache: dict[str, frozenset[str]] = {}
        self._escape_cache: dict[str, dict[str, RaiseOrigin]] | None = None
        self._acquire_cache: dict[str, frozenset[str]] = {}

    @property
    def relpaths(self) -> dict[str, ModuleSummary]:
        return {m.relpath: m for m in self.modules.values()}

    # -- exception hierarchy ------------------------------------------------

    def ancestors(self, qual: str) -> frozenset[str]:
        """The type itself plus every base we can resolve."""
        cached = self._ancestor_cache.get(qual)
        if cached is not None:
            return cached
        self._ancestor_cache[qual] = frozenset({qual})  # cycle guard
        out = {qual}
        if qual in _KNOWN_EXTERNAL_BASES:
            out.update(_KNOWN_EXTERNAL_BASES[qual])
        elif qual.startswith("builtins."):
            obj = getattr(builtins, qual.partition(".")[2], None)
            if isinstance(obj, type):
                out.update(f"builtins.{base.__name__}" for base in obj.__mro__)
        elif qual in self.classes:
            _, cls = self.classes[qual]
            for base in cls.bases:
                out.update(self.ancestors(base))
        result = frozenset(out)
        self._ancestor_cache[qual] = result
        return result

    def is_caught(self, raised: str, catch_set: frozenset[str]) -> bool:
        return bool(self.ancestors(raised) & catch_set)

    # -- method / call resolution -------------------------------------------

    def resolve_method(
        self, class_qual: str, name: str
    ) -> FunctionSummary | None:
        """Look ``name`` up on a class, walking project base classes."""
        seen: set[str] = set()
        queue = [class_qual]
        while queue:
            current = queue.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            _, cls = self.classes[current]
            if name in cls.methods:
                return cls.methods[name]
            queue.extend(cls.bases)
        return None

    def _attr_class(self, owner: ClassSummary, attr: str) -> str | None:
        for candidate in owner.attr_types.get(attr, ()):
            if candidate in self.classes:
                return candidate
        return None

    def resolve_call(
        self,
        module: ModuleSummary,
        class_qual: str | None,
        site: CallSite,
    ) -> list[FunctionSummary]:
        """Callee summaries for one call site (possibly empty)."""
        path = site.path
        owner = self.classes[class_qual][1] if class_qual else None
        if path[0] == "self" and owner is not None:
            if len(path) == 2:
                if site.is_property:
                    return []
                found = self.resolve_method(class_qual, path[1])
                return [found] if found else []
            if len(path) == 3:
                target = self._attr_class(owner, path[1])
                if target is None:
                    return []
                found = self.resolve_method(target, path[2])
                if found is None:
                    return []
                if site.is_property:
                    target_cls = self.classes[target][1]
                    if path[2] not in target_cls.properties:
                        return []
                return [found]
            return []
        if site.is_property:
            return []
        resolved = module.resolve(".".join(path))
        return self._resolve_qual(resolved)

    def _resolve_qual(self, qual: str) -> list[FunctionSummary]:
        if qual in self.classes:  # constructor call
            out = []
            for init in ("__init__", "__post_init__"):
                found = self.resolve_method(qual, init)
                if found is not None:
                    out.append(found)
            return out
        if qual in self.functions:
            return [self.functions[qual][2]]
        # ``Class.method`` (classmethod via the class name).
        head, _, tail = qual.rpartition(".")
        if head in self.classes:
            found = self.resolve_method(head, tail)
            return [found] if found else []
        return []

    # -- escape analysis (RJI013) -------------------------------------------

    def escapes(self, qualname: str) -> dict[str, RaiseOrigin]:
        """Exception types that may escape ``qualname``, with origins."""
        if self._escape_cache is None:
            self._compute_escapes()
        assert self._escape_cache is not None
        return self._escape_cache.get(qualname, {})

    def _compute_escapes(self) -> None:
        escapes: dict[str, dict[str, RaiseOrigin]] = {
            qual: {} for qual in self.functions
        }
        callers: dict[str, set[str]] = {qual: set() for qual in self.functions}
        sites: dict[str, list[tuple[CallSite, list[str]]]] = {}
        for qual, (module, class_qual, fn) in self.functions.items():
            resolved_sites: list[tuple[CallSite, list[str]]] = []
            for site in fn.calls:
                callees = self.resolve_call(module, class_qual, site)
                names = [callee.qualname for callee in callees]
                for name in names:
                    callers.setdefault(name, set()).add(qual)
                if names or site.path[-1] in _STRUCT_TAILS:
                    resolved_sites.append((site, names))
            sites[qual] = resolved_sites
        worklist = list(self.functions)
        in_worklist = set(worklist)
        while worklist:
            qual = worklist.pop()
            in_worklist.discard(qual)
            module, _, fn = self.functions[qual]
            current: dict[str, RaiseOrigin] = {}
            for raise_site in fn.raises:
                for raw in raise_site.types:
                    if not self._is_exception_type(raw):
                        continue
                    if self._absorbed(raw, raise_site.guards):
                        continue
                    current.setdefault(
                        raw, RaiseOrigin(module.relpath, raise_site.line)
                    )
            for site, names in sites[qual]:
                incoming: dict[str, RaiseOrigin] = {}
                for name in names:
                    incoming.update(escapes.get(name, {}))
                if site.path[-1] in _STRUCT_TAILS and self._is_struct_call(
                    module, site
                ):
                    incoming.setdefault(
                        _STRUCT_ERROR, RaiseOrigin(module.relpath, site.line)
                    )
                for raw, origin in incoming.items():
                    if self._absorbed(raw, site.guards):
                        continue
                    current.setdefault(raw, origin)
            if current != escapes[qual]:
                escapes[qual] = current
                for caller in callers.get(qual, ()):
                    if caller not in in_worklist:
                        worklist.append(caller)
                        in_worklist.add(caller)
        self._escape_cache = escapes

    def _is_struct_call(self, module: ModuleSummary, site: CallSite) -> bool:
        """Whether a pack/unpack-tailed call plausibly targets ``struct``."""
        head = site.path[0]
        if head == "struct" or module.resolve(head) == "struct":
            return True
        # Precompiled ``struct.Struct`` held in a module-level constant.
        return head in module.toplevel or (
            site.path[0] == "self" and len(site.path) == 3
        )

    def _is_exception_type(self, qual: str) -> bool:
        """Whether ``qual`` demonstrably derives from ``BaseException``."""
        return "builtins.BaseException" in self.ancestors(qual)

    def _absorbed(self, raised: str, guards) -> bool:
        return any(self.is_caught(raised, guard) for guard in guards)

    # -- lock model (RJI011 / RJI012) ---------------------------------------

    def lock_qual(self, class_qual: str, attr: str) -> str:
        return f"{class_qual}.{attr}"

    def may_acquire(self, qualname: str) -> frozenset[str]:
        """Locks a function may take, directly or through callees."""
        cached = self._acquire_cache.get(qualname)
        if cached is not None:
            return cached
        self._acquire_cache[qualname] = frozenset()  # recursion guard
        entry = self.functions.get(qualname)
        if entry is None:
            return frozenset()
        module, class_qual, fn = entry
        out: set[str] = set()
        if class_qual is not None:
            for acquire in fn.acquires:
                out.add(self.lock_qual(class_qual, acquire.attr))
        for site in fn.calls:
            for callee in self.resolve_call(module, class_qual, site):
                out.update(self.may_acquire(callee.qualname))
        result = frozenset(out)
        self._acquire_cache[qualname] = result
        return result

    def lock_order_edges(self) -> list[LockEdge]:
        """Every held-while-acquiring ordering observed in the project."""
        edges: dict[tuple[str, str], LockEdge] = {}

        def add(held: str, acquired: str, relpath: str, line: int) -> None:
            key = (held, acquired)
            if key not in edges:
                edges[key] = LockEdge(held, acquired, relpath, line)

        for qual, (module, class_qual, fn) in sorted(self.functions.items()):
            if class_qual is None:
                continue
            for acquire in fn.acquires:
                acquired = self.lock_qual(class_qual, acquire.attr)
                for held_attr, _mode in acquire.held:
                    if held_attr == acquire.attr:
                        continue  # re-entry is RJI011/self-loop territory
                    add(
                        self.lock_qual(class_qual, held_attr),
                        acquired,
                        module.relpath,
                        acquire.line,
                    )
            for site in fn.calls:
                if not site.held:
                    continue
                for callee in self.resolve_call(module, class_qual, site):
                    for acquired in self.may_acquire(callee.qualname):
                        for held_attr, _mode in site.held:
                            held_qual = self.lock_qual(class_qual, held_attr)
                            if held_qual == acquired:
                                continue
                            add(held_qual, acquired, module.relpath, site.line)
        return list(edges.values())

    def lock_cycles(self) -> list[list[LockEdge]]:
        """Cycles in the acquisition-order graph, deterministically."""
        edges = self.lock_order_edges()
        graph: dict[str, list[LockEdge]] = {}
        for edge in edges:
            graph.setdefault(edge.held, []).append(edge)
        for outgoing in graph.values():
            outgoing.sort(key=lambda e: e.acquired)
        cycles: list[list[LockEdge]] = []
        seen_cycles: set[tuple[str, ...]] = set()
        for start in sorted(graph):
            stack: list[LockEdge] = []
            on_path: set[str] = {start}

            def dfs(node: str) -> None:
                for edge in graph.get(node, ()):
                    if edge.acquired == start:
                        nodes = tuple(
                            sorted([e.held for e in stack] + [edge.held])
                        )
                        if nodes not in seen_cycles:
                            seen_cycles.add(nodes)
                            cycles.append(stack + [edge])
                    elif edge.acquired not in on_path:
                        on_path.add(edge.acquired)
                        stack.append(edge)
                        dfs(edge.acquired)
                        stack.pop()
                        on_path.discard(edge.acquired)

            dfs(start)
        return cycles
