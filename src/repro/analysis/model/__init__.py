"""Whole-program model for rjilint's cross-module rules.

Three layers, bottom up:

* :mod:`~repro.analysis.model.summary` — per-module fact extraction
  into picklable :class:`ModuleSummary` objects (symbol tables, import
  resolution, class attribute maps, lock-held regions, call and raise
  sites);
* :mod:`~repro.analysis.model.project` — :class:`ProjectIndex`, the
  stitched view: method resolution over base chains, a best-effort call
  graph, the interprocedural exception-escape fixpoint, and the global
  lock-acquisition-order graph;
* :mod:`~repro.analysis.model.cache` — content-hash-keyed incremental
  caching so warm runs only re-extract changed files.

RJI001–RJI010 stay per-file and never touch this package; the
project-scope rules (RJI011–RJI013) receive a :class:`ProjectIndex`
from the runner.
"""

from .cache import build_project_index, cache_path, file_digest
from .project import LockEdge, ProjectIndex, RaiseOrigin
from .summary import (
    BlockingOp,
    CallSite,
    ClassSummary,
    FieldAccess,
    FunctionSummary,
    LockAcquire,
    ModuleSummary,
    RaiseSite,
    extract_module,
    module_name_for,
)

__all__ = [
    "BlockingOp",
    "CallSite",
    "ClassSummary",
    "FieldAccess",
    "FunctionSummary",
    "LockAcquire",
    "LockEdge",
    "ModuleSummary",
    "ProjectIndex",
    "RaiseOrigin",
    "RaiseSite",
    "build_project_index",
    "cache_path",
    "extract_module",
    "file_digest",
    "module_name_for",
]
