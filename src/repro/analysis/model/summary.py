"""Per-module fact extraction for whole-program analysis.

:func:`extract_module` walks one parsed module and distills everything
the cross-module rules (RJI011–RJI013) need into a picklable
:class:`ModuleSummary` — no AST objects survive, so summaries cache
cheaply by content hash (see :mod:`repro.analysis.model.cache`):

* class tables: bases, lock-owning attributes, best-effort attribute
  types (``self.x = ClassName(...)`` and annotated-parameter
  assignments), ``@property`` methods;
* per-function field accesses and lock acquisitions, each carrying the
  set of *own-class* locks syntactically held at that point (``with
  self._lock:``, ``with self._lock.reading()/.writing():``, and the
  ``try: ... finally: self._lock.release_*()`` discipline);
* call sites and explicit ``raise`` sites, each carrying the stack of
  enclosing ``except`` catch-sets, so the project layer can propagate
  raised types interprocedurally;
* blocking operations (``sleep``, ``open``, ``fsync``, ...) with the
  locks held around them.

Explicit field-guard annotations are read from comments::

    self._table = {}  # rjilint: guarded-by(_lock)
"""

from __future__ import annotations

import ast
import builtins
import re
from dataclasses import dataclass, field

from ..context import ModuleContext, SuppressionIndex

__all__ = [
    "BlockingOp",
    "CallSite",
    "ClassSummary",
    "FieldAccess",
    "FunctionSummary",
    "LockAcquire",
    "ModuleSummary",
    "RaiseSite",
    "extract_module",
    "module_name_for",
]

#: Constructor names that mark an attribute as a lock, with its kind.
_LOCK_CONSTRUCTORS = {
    "Lock": "lock",
    "RLock": "rlock",
    "Condition": "condition",
    "Semaphore": "lock",
    "BoundedSemaphore": "lock",
    "ReadWriteLock": "rwlock",
}

#: ``finally`` release verbs -> the mode whose region the try body forms.
_RELEASE_MODES = {
    "release_read": "read",
    "release_write": "write",
    "release": "exclusive",
}

#: Call tails treated as blocking while a lock is held (RJI011).  Plain
#: stream ``.write``/``.flush`` are excluded on purpose: serialized line
#: emission under a lock is the JSONL recorder's documented design.
_BLOCKING_TAILS = frozenset(
    {"sleep", "open", "fsync", "read_bytes", "write_bytes", "urlopen"}
)

_GUARDED_BY = re.compile(r"rjilint:\s*guarded-by\((?P<lock>[A-Za-z_][A-Za-z0-9_]*)\)")

_INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


@dataclass(frozen=True)
class FieldAccess:
    """One read or write of ``self.<attr>`` inside a method."""

    attr: str
    line: int
    col: int
    is_write: bool
    held: tuple[tuple[str, str], ...]  # ((lock_attr, mode), ...)


@dataclass(frozen=True)
class LockAcquire:
    """One acquisition of an own-class lock (with-guard or bare call)."""

    attr: str
    mode: str  # "exclusive" | "read" | "write"
    line: int
    col: int
    held: tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class CallSite:
    """One call (or possible property read) with its guard context."""

    path: tuple[str, ...]  # ("self", "breaker", "record_failure")
    line: int
    col: int
    held: tuple[tuple[str, str], ...]
    guards: tuple[frozenset[str], ...]  # enclosing except catch-sets
    is_property: bool = False


@dataclass(frozen=True)
class RaiseSite:
    """One explicit ``raise`` with resolved candidate exception types."""

    types: tuple[str, ...]  # qualified-ish names; empty = unresolvable
    line: int
    col: int
    guards: tuple[frozenset[str], ...]


@dataclass(frozen=True)
class BlockingOp:
    """A blocking call made while at least one lock was held."""

    what: str
    line: int
    col: int
    held: tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class FunctionSummary:
    """Facts about one function or method body."""

    name: str
    qualname: str
    lineno: int
    is_init: bool
    accesses: tuple[FieldAccess, ...] = ()
    acquires: tuple[LockAcquire, ...] = ()
    calls: tuple[CallSite, ...] = ()
    raises: tuple[RaiseSite, ...] = ()
    blocking: tuple[BlockingOp, ...] = ()


@dataclass(frozen=True)
class ClassSummary:
    """Facts about one class (nested classes use ``Outer._Inner`` names)."""

    name: str
    qualname: str
    lineno: int
    bases: tuple[str, ...]
    lock_attrs: dict[str, str]  # attr -> kind
    attr_types: dict[str, tuple[str, ...]]  # attr -> candidate class names
    guarded_annotations: dict[str, str]  # field -> declared lock attr
    annotation_lines: dict[str, int]  # field -> annotation line
    methods: dict[str, FunctionSummary]
    properties: frozenset[str]


@dataclass
class ModuleSummary:
    """Everything the project layer keeps about one module."""

    module: str  # dotted, e.g. "repro.core.concurrent"
    relpath: str
    digest: str
    package: str | None
    imports: dict[str, str] = field(default_factory=dict)
    toplevel: frozenset[str] = frozenset()
    classes: dict[str, ClassSummary] = field(default_factory=dict)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    suppressions: SuppressionIndex = field(default_factory=SuppressionIndex)

    def resolve(self, dotted: str) -> str:
        """Best-effort qualification of a (possibly dotted) local name."""
        head, _, rest = dotted.partition(".")
        if head in self.imports:
            base = self.imports[head]
        elif head in self.toplevel:
            base = f"{self.module}.{head}"
        elif hasattr(builtins, head):
            base = f"builtins.{head}"
        else:
            return dotted
        return f"{base}.{rest}" if rest else base


def module_name_for(relpath: str) -> str | None:
    """Dotted module name of a ``src/repro`` file, else ``None``."""
    parts = relpath.split("/")
    for i in range(len(parts) - 1):
        if parts[i] == "src" and parts[i + 1] == "repro":
            below = parts[i + 1 :]
            if below[-1] == "__init__.py":
                below = below[:-1]
            else:
                below[-1] = below[-1][: -len(".py")]
            return ".".join(below)
    return None


def _dotted_path(node: ast.expr) -> tuple[str, ...] | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _annotation_names(annotation: ast.expr | None) -> tuple[str, ...]:
    """Candidate type names out of an annotation (handles ``A | B``)."""
    if annotation is None:
        return ()
    names: list[str] = []
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id != "None":
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            path = _dotted_path(node)
            if path is not None:
                names.append(".".join(path))
    # An Attribute's walk also yields its base Name; keep dotted first.
    dotted = [n for n in names if "." in n]
    if dotted:
        return tuple(dict.fromkeys(dotted))
    return tuple(dict.fromkeys(names))


class _Extractor:
    """Walks one module's AST and produces its :class:`ModuleSummary`."""

    def __init__(self, ctx: ModuleContext, digest: str):
        module = module_name_for(ctx.relpath) or ctx.relpath
        self.ctx = ctx
        self.out = ModuleSummary(
            module=module,
            relpath=ctx.relpath,
            digest=digest,
            package=ctx.package,
            suppressions=ctx.suppressions,
        )

    # -- module level -------------------------------------------------------

    def run(self) -> ModuleSummary:
        toplevel: set[str] = set()
        for stmt in self.ctx.tree.body:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                self._record_import(stmt)
            elif isinstance(stmt, ast.ClassDef):
                toplevel.add(stmt.name)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                toplevel.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        toplevel.add(target.id)
        self.out.toplevel = frozenset(toplevel)
        for stmt in self.ctx.tree.body:
            if isinstance(stmt, ast.ClassDef):
                self._extract_class(stmt, prefix="")
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                summary = self._extract_function(
                    stmt, lock_attrs={}, qualprefix=self.out.module
                )
                self.out.functions[stmt.name] = summary
        return self.out

    def _record_import(self, stmt: ast.Import | ast.ImportFrom) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else local
                self.out.imports[local] = target
            return
        base: list[str]
        if stmt.level:
            parts = self.out.module.split(".")
            # ``from . import x`` in a module at depth d strips d-1+level?
            # Module "repro.core.concurrent": level=1 -> "repro.core".
            base = parts[: -stmt.level] if stmt.level <= len(parts) else []
        else:
            base = []
        if stmt.module:
            base = base + stmt.module.split(".")
        prefix = ".".join(base)
        for alias in stmt.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.out.imports[local] = (
                f"{prefix}.{alias.name}" if prefix else alias.name
            )

    # -- classes ------------------------------------------------------------

    def _extract_class(self, node: ast.ClassDef, prefix: str) -> None:
        name = f"{prefix}{node.name}"
        qualname = f"{self.out.module}.{name}"
        bases = tuple(
            self.out.resolve(".".join(path))
            for base in node.bases
            if (path := _dotted_path(base)) is not None
        )
        lock_attrs: dict[str, str] = {}
        attr_types: dict[str, tuple[str, ...]] = {}
        guarded: dict[str, str] = {}
        guarded_lines: dict[str, int] = {}
        properties: set[str] = set()
        methods = [
            stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        # Pass 1: attribute discovery (locks, types, annotations).
        for method in methods:
            params = self._param_annotations(method)
            for sub in ast.walk(method):
                if not isinstance(sub, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for target in targets:
                    path = _dotted_path(target)
                    if path is None or path[0] != "self" or len(path) != 2:
                        continue
                    attr = path[1]
                    value = sub.value
                    comment = self.ctx.comments.get(sub.lineno, "")
                    match = _GUARDED_BY.search(comment)
                    if match is not None:
                        guarded[attr] = match.group("lock")
                        guarded_lines[attr] = sub.lineno
                    if value is None:
                        continue
                    kind = self._lock_kind(value)
                    if kind is not None:
                        lock_attrs[attr] = kind
                        continue
                    candidates = self._type_candidates(value, params)
                    if candidates:
                        merged = attr_types.get(attr, ()) + candidates
                        attr_types[attr] = tuple(dict.fromkeys(merged))
        # Pass 2: per-method flow facts, knowing the lock attributes.
        extracted: dict[str, FunctionSummary] = {}
        for method in methods:
            extracted[method.name] = self._extract_function(
                method, lock_attrs=lock_attrs, qualprefix=qualname
            )
            if any(
                isinstance(dec, ast.Name)
                and dec.id in ("property", "cached_property")
                for dec in method.decorator_list
            ):
                properties.add(method.name)
        self.out.classes[name] = ClassSummary(
            name=name,
            qualname=qualname,
            lineno=node.lineno,
            bases=bases,
            lock_attrs=lock_attrs,
            attr_types=attr_types,
            guarded_annotations=guarded,
            annotation_lines=guarded_lines,
            methods=extracted,
            properties=frozenset(properties),
        )
        for stmt in node.body:
            if isinstance(stmt, ast.ClassDef):
                self._extract_class(stmt, prefix=f"{name}.")

    def _lock_kind(self, value: ast.expr) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        path = _dotted_path(value.func)
        if path is None:
            return None
        return _LOCK_CONSTRUCTORS.get(path[-1])

    def _type_candidates(
        self, value: ast.expr, params: dict[str, tuple[str, ...]]
    ) -> tuple[str, ...]:
        """Candidate class names for ``self.x = <value>`` assignments."""
        if isinstance(value, ast.IfExp):
            return self._type_candidates(
                value.body, params
            ) + self._type_candidates(value.orelse, params)
        if isinstance(value, ast.Call):
            path = _dotted_path(value.func)
            if path is not None:
                return (self.out.resolve(".".join(path)),)
            return ()
        if isinstance(value, ast.Name):
            return tuple(
                self.out.resolve(name) for name in params.get(value.id, ())
            )
        return ()

    def _param_annotations(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> dict[str, tuple[str, ...]]:
        out: dict[str, tuple[str, ...]] = {}
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            names = _annotation_names(arg.annotation)
            if names:
                out[arg.arg] = names
        return out

    # -- function bodies ----------------------------------------------------

    def _extract_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        lock_attrs: dict[str, str],
        qualprefix: str,
    ) -> FunctionSummary:
        walker = _BodyWalker(self, lock_attrs)
        walker.locals_ann.update(self._param_annotations(node))
        walker.walk(node.body, held=(), guards=(), handler=None)
        return FunctionSummary(
            name=node.name,
            qualname=f"{qualprefix}.{node.name}",
            lineno=node.lineno,
            is_init=node.name in _INIT_METHODS,
            accesses=tuple(walker.accesses),
            acquires=tuple(walker.acquires),
            calls=tuple(walker.calls),
            raises=tuple(walker.raises),
            blocking=tuple(walker.blocking),
        )


class _BodyWalker:
    """Statement walker tracking held locks and enclosing guards."""

    def __init__(self, extractor: _Extractor, lock_attrs: dict[str, str]):
        self.extractor = extractor
        self.lock_attrs = lock_attrs
        self.locals_ann: dict[str, tuple[str, ...]] = {}
        self.accesses: list[FieldAccess] = []
        self.acquires: list[LockAcquire] = []
        self.calls: list[CallSite] = []
        self.raises: list[RaiseSite] = []
        self.blocking: list[BlockingOp] = []

    def resolve(self, dotted: str) -> str:
        return self.extractor.out.resolve(dotted)

    # -- statements ---------------------------------------------------------

    def walk(self, stmts, held, guards, handler) -> None:
        for stmt in stmts:
            self._stmt(stmt, held, guards, handler)

    def _stmt(self, stmt: ast.stmt, held, guards, handler) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are out of the flow model
        if isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            new_held = held
            for item in stmt.items:
                lock = self._lock_guard(item.context_expr)
                if lock is not None:
                    attr, mode = lock
                    self.acquires.append(
                        LockAcquire(
                            attr=attr,
                            mode=mode,
                            line=item.context_expr.lineno,
                            col=item.context_expr.col_offset,
                            held=new_held,
                        )
                    )
                    new_held = new_held + ((attr, mode),)
                else:
                    self._expr(item.context_expr, new_held, guards)
                if item.optional_vars is not None:
                    self._write_target(item.optional_vars, new_held, guards)
            self.walk(stmt.body, new_held, guards, handler)
            return
        if isinstance(stmt, ast.Try):
            catch_sets = []
            for h in stmt.handlers:
                catch_sets.append(self._catch_set(h))
            body_guards = guards + (frozenset().union(*catch_sets),) if catch_sets else guards
            extra = self._finally_held(stmt.finalbody)
            region = held + tuple(extra)
            self.walk(stmt.body, region, body_guards, handler)
            for h, caught in zip(stmt.handlers, catch_sets):
                inner = dict(self.locals_ann)
                if h.name is not None:
                    self.locals_ann[h.name] = tuple(caught)
                self.walk(h.body, region, guards, (h, tuple(caught)))
                self.locals_ann = inner
            self.walk(stmt.orelse, region, guards, handler)
            self.walk(stmt.finalbody, held, guards, handler)
            return
        if isinstance(stmt, ast.Raise):
            self._raise(stmt, guards, handler)
            if stmt.exc is not None:
                self._expr(stmt.exc, held, guards)
            if stmt.cause is not None:
                self._expr(stmt.cause, held, guards)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._expr(stmt.test, held, guards)
            self.walk(stmt.body, held, guards, handler)
            self.walk(stmt.orelse, held, guards, handler)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter, held, guards)
            self._write_target(stmt.target, held, guards)
            self.walk(stmt.body, held, guards, handler)
            self.walk(stmt.orelse, held, guards, handler)
            return
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value, held, guards)
            for target in stmt.targets:
                self._write_target(target, held, guards)
            return
        if isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value, held, guards)
            self._write_target(stmt.target, held, guards)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr(stmt.value, held, guards)
            if isinstance(stmt.target, ast.Name):
                names = _annotation_names(stmt.annotation)
                if names:
                    self.locals_ann[stmt.target.id] = tuple(
                        self.resolve(n) for n in names
                    )
            self._write_target(stmt.target, held, guards)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._write_target(target, held, guards)
            return
        if isinstance(stmt, ast.Assert):
            return  # assertion failures are out of the error-contract model
        if isinstance(stmt, (ast.Return, ast.Expr)):
            if stmt.value is not None:
                self._expr(stmt.value, held, guards)
            return
        # Generic compound fallback (match statements etc.): same state.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._stmt(child, held, guards, handler)
            elif isinstance(child, ast.expr):
                self._expr(child, held, guards)
            elif hasattr(child, "body"):
                body = getattr(child, "body")
                if isinstance(body, list):
                    self.walk(body, held, guards, handler)

    # -- pieces -------------------------------------------------------------

    def _lock_guard(self, expr: ast.expr) -> tuple[str, str] | None:
        path = _dotted_path(expr)
        if (
            path is not None
            and path[0] == "self"
            and len(path) == 2
            and path[1] in self.lock_attrs
        ):
            return (path[1], "exclusive")
        if isinstance(expr, ast.Call):
            path = _dotted_path(expr.func)
            if (
                path is not None
                and path[0] == "self"
                and len(path) == 3
                and path[1] in self.lock_attrs
            ):
                if path[2] == "reading":
                    return (path[1], "read")
                if path[2] == "writing":
                    return (path[1], "write")
        return None

    def _finally_held(self, finalbody) -> list[tuple[str, str]]:
        """Locks released in ``finally`` — their try body is a held region."""
        out: list[tuple[str, str]] = []
        for stmt in finalbody:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                path = _dotted_path(node.func)
                if (
                    path is not None
                    and path[0] == "self"
                    and len(path) == 3
                    and path[1] in self.lock_attrs
                ):
                    mode = _RELEASE_MODES.get(path[2])
                    if mode is not None:
                        out.append((path[1], mode))
        return out

    def _catch_set(self, handler: ast.ExceptHandler) -> frozenset[str]:
        if handler.type is None:
            return frozenset({"builtins.BaseException"})
        names: set[str] = set()
        annotations = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for annotation in annotations:
            path = _dotted_path(annotation)
            if path is not None:
                names.add(self.resolve(".".join(path)))
        return frozenset(names)

    def _raise(self, stmt: ast.Raise, guards, handler) -> None:
        types: tuple[str, ...] = ()
        if stmt.exc is None:
            if handler is not None:
                types = handler[1]  # bare re-raise of the caught types
        else:
            target = stmt.exc
            if isinstance(target, ast.Call):
                target = target.func
            path = _dotted_path(target)
            if path is not None:
                dotted = ".".join(path)
                if path[0] in self.locals_ann and len(path) == 1:
                    types = tuple(
                        self.resolve(n) for n in self.locals_ann[path[0]]
                    )
                else:
                    types = (self.resolve(dotted),)
        self.raises.append(
            RaiseSite(
                types=types,
                line=stmt.lineno,
                col=stmt.col_offset,
                guards=guards,
            )
        )

    def _write_target(self, target: ast.expr, held, guards) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._write_target(element, held, guards)
            return
        if isinstance(target, ast.Starred):
            self._write_target(target.value, held, guards)
            return
        node = target
        while isinstance(node, ast.Subscript):
            if isinstance(node.slice, ast.expr):
                self._expr(node.slice, held, guards)
            node = node.value
        path = _dotted_path(node)
        if path is not None and path[0] == "self" and len(path) >= 2:
            self.accesses.append(
                FieldAccess(
                    attr=path[1],
                    line=target.lineno,
                    col=target.col_offset,
                    is_write=True,
                    held=held,
                )
            )
            return
        # Reads buried in a complex target (e.g. ``obj.attr[self.i] = v``).
        if node is not target:
            self._expr(node, held, guards)

    def _expr(self, expr: ast.expr, held, guards) -> None:
        call_funcs: dict[int, ast.Call] = {}
        attribute_values: set[int] = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                call_funcs[id(node.func)] = node
            if isinstance(node, ast.Attribute):
                attribute_values.add(id(node.value))
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._call(node, held, guards)
            elif isinstance(node, ast.Attribute):
                path = _dotted_path(node)
                if path is None or path[0] != "self":
                    continue
                if len(path) == 2 and isinstance(node.ctx, ast.Load):
                    self.accesses.append(
                        FieldAccess(
                            attr=path[1],
                            line=node.lineno,
                            col=node.col_offset,
                            is_write=False,
                            held=held,
                        )
                    )
                elif (
                    len(path) == 3
                    and isinstance(node.ctx, ast.Load)
                    and id(node) not in call_funcs
                    and id(node) not in attribute_values
                ):
                    # Outermost ``self.attr.name`` load: maybe a property.
                    self.calls.append(
                        CallSite(
                            path=path,
                            line=node.lineno,
                            col=node.col_offset,
                            held=held,
                            guards=guards,
                            is_property=True,
                        )
                    )

    def _call(self, node: ast.Call, held, guards) -> None:
        path = _dotted_path(node.func)
        if path is None:
            return
        self.calls.append(
            CallSite(
                path=path,
                line=node.lineno,
                col=node.col_offset,
                held=held,
                guards=guards,
            )
        )
        tail = path[-1]
        if (
            path[0] == "self"
            and len(path) == 3
            and path[1] in self.lock_attrs
            and tail.startswith("acquire")
        ):
            mode = {
                "acquire_read": "read",
                "acquire_write": "write",
            }.get(tail, "exclusive")
            self.acquires.append(
                LockAcquire(
                    attr=path[1],
                    mode=mode,
                    line=node.lineno,
                    col=node.col_offset,
                    held=held,
                )
            )
        if held and (tail in _BLOCKING_TAILS or path[0] == "subprocess"):
            self.blocking.append(
                BlockingOp(
                    what=".".join(path),
                    line=node.lineno,
                    col=node.col_offset,
                    held=held,
                )
            )


def extract_module(ctx: ModuleContext, digest: str = "") -> ModuleSummary:
    """Extract the cross-module facts of one parsed module."""
    return _Extractor(ctx, digest).run()
