"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable

from .registry import Finding

__all__ = ["render_json", "render_text"]


def render_text(findings: Iterable[Finding]) -> str:
    """One ``path:line:col: RULE message`` line per finding + summary."""
    items = sorted(findings)
    if not items:
        return "rjilint: clean"
    lines = [finding.render() for finding in items]
    by_rule = Counter(finding.rule for finding in items)
    breakdown = ", ".join(
        f"{rule}: {count}" for rule, count in sorted(by_rule.items())
    )
    n_files = len({finding.path for finding in items})
    lines.append(
        f"rjilint: {len(items)} finding(s) in {n_files} file(s) ({breakdown})"
    )
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    """Stable JSON document: findings plus per-rule counts."""
    items = sorted(findings)
    payload = {
        "findings": [finding.to_json() for finding in items],
        "counts": dict(
            sorted(Counter(finding.rule for finding in items).items())
        ),
        "total": len(items),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
