"""Figure 11 — sizes of Dom and Sep as a function of K.

For each dataset the paper fixes the join result at 50,000 tuples and
sweeps the construction bound K, reporting |Dom| (the dominating set)
and |Sep| (the separating points the RJI materializes) as percentages of
the join size.  The published shape: both stay below ~6% of the join
everywhere and grow gracefully with K.
"""

from __future__ import annotations

from ..core.dominance import dominating_set
from ..core.sweep import sweep_regions
from .datasets import make_pairs
from .harness import ResultTable

__all__ = ["run", "plots", "PAPER_PARAMS", "DEFAULT_PARAMS"]

PAPER_PARAMS = dict(
    join_size=50_000,
    ks=(10, 50, 100, 200, 300, 400, 500),
    datasets=("unif", "gauss", "zipf0.1", "zipf2", "real_web", "real_xml"),
)
DEFAULT_PARAMS = dict(
    join_size=8_000,
    ks=(10, 25, 50, 100),
    datasets=("unif", "gauss", "zipf0.1", "zipf2", "real_web", "real_xml"),
)


def run(
    *,
    join_size: int = DEFAULT_PARAMS["join_size"],
    ks: tuple[int, ...] = DEFAULT_PARAMS["ks"],
    datasets: tuple[str, ...] = DEFAULT_PARAMS["datasets"],
    seed: int = 0,
) -> ResultTable:
    """Regenerate Figure 11's series for the requested datasets."""
    table = ResultTable(
        "Figure 11: |Dom| and |Sep| vs K (as % of join result size)",
        ("dataset", "K", "|Dom|", "Dom %", "|Sep|", "Sep %"),
        notes=f"join result size = {join_size}",
    )
    for name in datasets:
        pairs = make_pairs(name, join_size, seed=seed)
        for k in ks:
            dom = dominating_set(pairs, k)
            _, stats = sweep_regions(dom, k)
            table.add(
                name,
                k,
                len(dom),
                round(100.0 * len(dom) / join_size, 3),
                stats.n_separating,
                round(100.0 * stats.n_separating / join_size, 3),
            )
    return table


def plots(table) -> str:
    """ASCII shape plots of the Figure 11 series (Dom% / Sep% vs K)."""
    from .asciiplot import line_chart, series_from_table

    dom = line_chart(
        series_from_table(table, x="K", y="Dom %", group_by="dataset"),
        title="Figure 11 shape: |Dom| as % of join size vs K",
    )
    sep = line_chart(
        series_from_table(table, x="K", y="Sep %", group_by="dataset"),
        title="Figure 11 shape: |Sep| as % of join size vs K",
    )
    return dom + "\n\n" + sep
