"""Figure 16 — total space (index + data pages) of RJI vs the R-tree.

Both structures are serialized onto 4 KiB pages: the RJI's B+-tree over
separating points plus its region heap, and the R-tree's node pages over
the dominating points.  Published shape: the RJI occupies 10-50% of the
R-tree's space on synthetic data and is 3-10x smaller on the real
datasets; the paper merges RJI regions before measuring (Section 8.3),
reproduced here with the same 2K distinct-tuple budget.
"""

from __future__ import annotations

from ..core.dominance import dominating_set
from ..core.index import RankedJoinIndex
from ..rtree.disk import DiskRTree, max_entries_for_page
from ..rtree.rtree import RTree
from ..storage.diskindex import DiskRankedJoinIndex
from .datasets import make_pairs
from .harness import ResultTable, format_bytes

__all__ = ["run", "plots", "PAPER_PARAMS", "DEFAULT_PARAMS"]

PAPER_PARAMS = dict(
    join_size=50_000,
    ks=(50, 100, 200, 300, 400, 500),
    datasets=("unif", "zipf2", "real_web", "real_xml"),
)
DEFAULT_PARAMS = dict(
    join_size=10_000,
    ks=(10, 25, 50, 100),
    datasets=("unif", "zipf2", "real_web", "real_xml"),
)


def run(
    *,
    join_size: int = DEFAULT_PARAMS["join_size"],
    ks: tuple[int, ...] = DEFAULT_PARAMS["ks"],
    datasets: tuple[str, ...] = DEFAULT_PARAMS["datasets"],
    seed: int = 0,
) -> ResultTable:
    """Regenerate Figure 16's space comparison."""
    table = ResultTable(
        "Figure 16: total space (index + data) to answer top-k queries",
        (
            "dataset",
            "K",
            "|Dom|",
            "RJI regions",
            "RJI bytes",
            "R-tree bytes",
            "RJI / R-tree",
        ),
        notes=f"4 KiB pages; join size {join_size}; RJI merged to 2K budget",
    )
    for name in datasets:
        pairs = make_pairs(name, join_size, seed=seed)
        for k in ks:
            index = RankedJoinIndex.build(pairs, k, merge_slack=k)
            disk_index = DiskRankedJoinIndex(index)
            dom = dominating_set(pairs, k)
            tree = RTree.bulk_load(
                zip(dom.s1, dom.s2, dom.tids),
                max_entries=max_entries_for_page(),
            )
            disk_tree = DiskRTree(tree)
            ratio = disk_index.total_bytes / disk_tree.total_bytes
            table.add(
                name,
                k,
                len(dom),
                index.n_regions,
                format_bytes(disk_index.total_bytes),
                format_bytes(disk_tree.total_bytes),
                round(ratio, 2),
            )
    return table


def plots(table) -> str:
    """ASCII shape plot: space ratio RJI/R-tree vs K per dataset."""
    from .asciiplot import line_chart, series_from_table

    return line_chart(
        series_from_table(
            table, x="K", y="RJI / R-tree", group_by="dataset"
        ),
        title="Figure 16 shape: RJI bytes as a fraction of the R-tree's",
    )
