"""Dataset registry shared by the experiment modules.

Names follow Section 8.1: ``unif``, ``gauss``, ``zipf0.1``, ``zipf2``,
``real_web``, ``real_xml``.  For synthetic families ``n`` is the join
result size; the real substitutes accept ``n`` as well so experiments
can downscale (the paper's sizes are 370,000 / 160,000).
"""

from __future__ import annotations

from typing import Callable

from ..core.tuples import RankTupleSet
from ..datagen import (
    gaussian_pairs,
    real_web_pairs,
    real_xml_pairs,
    uniform_pairs,
    zipf_pairs,
)
from ..errors import ConstructionError

__all__ = ["DATASETS", "SYNTHETIC", "REAL", "make_pairs"]

SYNTHETIC = ("unif", "gauss", "zipf0.1", "zipf2")
REAL = ("real_web", "real_xml")

DATASETS: dict[str, Callable[..., RankTupleSet]] = {
    "unif": lambda n, seed: uniform_pairs(n, seed=seed),
    "gauss": lambda n, seed: gaussian_pairs(n, seed=seed),
    "zipf0.1": lambda n, seed: zipf_pairs(n, skew=0.1, seed=seed),
    "zipf2": lambda n, seed: zipf_pairs(n, skew=2.0, seed=seed),
    "real_web": lambda n, seed: real_web_pairs(n, seed=seed),
    "real_xml": lambda n, seed: real_xml_pairs(n, seed=seed),
}


def make_pairs(name: str, n: int, *, seed: int = 0) -> RankTupleSet:
    """Rank pairs of the named evaluation dataset at join size ``n``."""
    try:
        factory = DATASETS[name]
    except KeyError:
        raise ConstructionError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}"
        ) from None
    return factory(n, seed)
