"""EXPERIMENTS.md generator.

Stitches the result tables saved by the benchmark suite
(``benchmarks/results/*.txt``) together with the paper's published
expectations into a single paper-vs-measured report.  Regenerate with::

    pytest benchmarks/ --benchmark-only     # refreshes results/
    python -m repro.cli report              # rewrites EXPERIMENTS.md
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

__all__ = ["ExperimentEntry", "EXPERIMENT_ENTRIES", "generate_report"]


@dataclass(frozen=True)
class ExperimentEntry:
    """One table/figure: id, what the paper reports, what to expect."""

    result_file: str
    title: str
    paper_claim: str
    reproduction_notes: str


EXPERIMENT_ENTRIES: tuple[ExperimentEntry, ...] = (
    ExperimentEntry(
        "table1",
        "Table 1 — statistical properties of the real datasets",
        "Reports min/max/mean/median/std.dev/skew for the four columns of "
        "the crawled real_web and real_xml datasets.",
        "The original crawls are unavailable; synthetic substitutes are "
        "fitted to the published statistics (power-law in-degree, "
        "log-normal out-degree/size). 'ours' rows should track 'paper' "
        "rows: medians match (to +/-1), means within a factor of ~2, and "
        "the extreme positive skew of the in-degree column is preserved.",
    ),
    ExperimentEntry(
        "fig11",
        "Figure 11 — |Dom| and |Sep| vs K (join size 50,000)",
        "Both the dominating set and the materialized separating points "
        "stay below ~6% of the join size for K up to 500 and grow "
        "gracefully with K, on all six datasets.",
        "Same shape expected. Absolute percentages differ slightly from "
        "the published plots because the rank-pair distributions are "
        "regenerated; growth with K and the small-fraction property are "
        "the reproduced claims. Note |Sep| <= |Dom|-scale everywhere and "
        "both are far below the 50,000-tuple join.",
    ),
    ExperimentEntry(
        "fig12",
        "Figure 12 — join result vs dominating points (gauss)",
        "A scatter of the 50,000-tuple Gaussian join with the dominating "
        "points highlighted: a thin band on the upper-right sky of the "
        "cloud (|Dom| under a few percent at K=100).",
        "The ASCII density plot shows the same picture: '#' cells (the "
        "dominating band) hug the upper-right frontier of the '.' cloud.",
    ),
    ExperimentEntry(
        "fig13",
        "Figure 13 — |Dom| and |Sep| vs join result size (50K to 1M)",
        "Both set sizes remain roughly stable as the join grows 20x, for "
        "unif and Zipf2 at K in {50, 100, 500} — this decouples RJI "
        "construction from join size.",
        "Same flatness expected (the benchmark asserts a <3x band across "
        "the sweep).",
    ),
    ExperimentEntry(
        "fig14",
        "Figure 14 — RJI construction time breakdown (unif)",
        "tDom grows linearly with join size and dominates at 1M tuples "
        "(panel a); tSep grows with K and dominates at K=500 (panel b); "
        "tBLoad stays small throughout.",
        "Same crossover structure in Python timings. Absolute seconds are "
        "not comparable to the paper's C++/SunOS testbed.",
    ),
    ExperimentEntry(
        "fig15",
        "Figure 15 — time to answer top-k queries: RJI vs TopKrtree",
        "Averaged over 500 uniformly random preferences, the RJI answers "
        "up to 17x faster than the TopKrtree on unif and real_web, with "
        "the gap persisting as k grows; the R-tree loses by touching many "
        "useless tuples.",
        "RJI wins at every k >= 20 on both datasets and the R-tree scores "
        "hundreds of tuples per query where the RJI evaluates at most 2K. "
        "The measured speedup is smaller than 17x because both sides here "
        "are in-process Python over in-memory structures; the paper's gap "
        "includes disk-resident R-tree I/O. The disk view (page reads per "
        "query) shows the structural advantage directly: the RJI's page "
        "count is constant in k while the R-tree's grows. At k=10 the "
        "merged RJI (2K-tuple regions) evaluates more tuples than the "
        "R-tree's small frontier, giving near-parity — the one point "
        "where our shape deviates, an artifact of the Python constant "
        "factors, not of the structures.",
    ),
    ExperimentEntry(
        "fig16",
        "Figure 16 — total space (index + data): RJI vs R-tree",
        "The RJI occupies 10-50% of the R-tree's space on the synthetic "
        "datasets and is 3-10x smaller on real_web / real_xml, for K from "
        "50 to 500 at a 50,000-tuple join.",
        "Same ordering at every measured point (ratio <= 1.0, median well "
        "below 0.7). Ratios are computed from byte-exact 4 KiB page "
        "images of both structures.",
    ),
    ExperimentEntry(
        "ablation_merge",
        "Ablation — region merging (Section 6.2)",
        "The paper describes merging qualitatively: every m regions hold "
        "at most K+m-1 distinct tuples, shrinking space at bounded query "
        "cost, and adaptive packing 'allows for more aggressive reduction "
        "of space, without affecting the worst case query time'.",
        "Quantified here: regions and bytes fall monotonically with the "
        "slack for the adaptive strategy, which always packs at least as "
        "tightly as the fixed every-m grid; query time grows only mildly.",
    ),
    ExperimentEntry(
        "ablation_variants",
        "Ablation — RJI variants (standard / merged / ordered)",
        "Section 6.2's two trade-off endpoints around the default design.",
        "Merged is smallest, ordered has the most regions (every ordering "
        "change materialized) and the fastest queries (no re-evaluation).",
    ),
    ExperimentEntry(
        "ablation_baselines",
        "Ablation — RJI vs no-preprocessing rank joins",
        "The related-work claim: operators in the Natsev et al. [14] / "
        "Ilyas et al. [13] class recompute the (partial) join per query, "
        "so their per-query cost scales with the data; the RJI pays once "
        "at build time.",
        "HRJN and the full scan slow down as the join grows while the "
        "RJI's per-query latency stays flat; HRJN's consumed-tuple "
        "counter shows its per-query depth directly.",
    ),
    ExperimentEntry(
        "latency",
        "Extra — latency percentiles per engine",
        "The paper reports mean query times; this complements Figure 15 "
        "with tail behaviour (p50/p95/p99/max) on one shared workload.",
        "The RJI's latency is tight (constant work per query); the "
        "R-tree's tail stretches on preferences whose frontier is wide; "
        "HRJN pays orders of magnitude more because it re-joins per "
        "query.  The vectorized full scan is competitive at small joins "
        "but scales linearly with the join while the RJI stays flat "
        "(see the baselines ablation).",
    ),
    ExperimentEntry(
        "ablation_correlation",
        "Ablation — pruning effectiveness vs rank correlation",
        "Example 1 of Section 4 illustrates the pruning extremes: an "
        "antichain (mutually non-dominating tuples) defeats the "
        "dominating-set step entirely, a chain collapses it to one tuple.",
        "Quantified over a correlation sweep: |Dom| falls monotonically "
        "from strongly anti-correlated (worst case) to strongly "
        "correlated rank pairs, and index bytes follow.",
    ),
    ExperimentEntry(
        "ablation_selection",
        "Ablation — single-relation top-k selection (Section 2)",
        "The paper claims its construction is the first top-k selection "
        "solution with guaranteed worst-case search for two rank "
        "attributes, contrasting the Onion technique [5] which lacks "
        "guarantees.",
        "The RJI specialization answers selection queries fastest; Onion "
        "is exact but merges up to k hull layers per query.",
    ),
)

_PREAMBLE = """\
# EXPERIMENTS — paper vs. measured

Every table and figure of the evaluation section of *Ranked Join
Indices* (ICDE 2003), regenerated by this repository.  Numbers below
come from `benchmarks/results/` (written by `pytest benchmarks/
--benchmark-only`); regenerate this file with `python -m repro.cli
report`.

Ground rules for reading the comparison:

* **Shapes, not absolute times.**  The paper measured C++ on a SunBlade
  1000 with disk-resident indices; this reproduction is pure Python.
  Set sizes, growth trends, page/byte counts and win/lose orderings are
  directly comparable; wall-clock microseconds are not.
* **Real datasets are substitutes** fitted to Table 1 (see DESIGN.md);
  Table 1 below prints the achieved statistics next to the published
  ones so the substitution quality is auditable.
"""


def generate_report(
    results_dir: str | Path, output_path: str | Path
) -> str:
    """Compose EXPERIMENTS.md from saved result tables; returns the text."""
    results_dir = Path(results_dir)
    sections = [_PREAMBLE]
    for entry in EXPERIMENT_ENTRIES:
        sections.append(f"\n## {entry.title}\n")
        sections.append(f"**Paper:** {entry.paper_claim}\n")
        sections.append(f"**Reproduction:** {entry.reproduction_notes}\n")
        result_file = results_dir / f"{entry.result_file}.txt"
        if result_file.exists():
            sections.append("**Measured:**\n")
            sections.append("```")
            sections.append(result_file.read_text().rstrip())
            sections.append("```\n")
        else:
            sections.append(
                "*(no saved results — run `pytest benchmarks/ "
                "--benchmark-only` first)*\n"
            )
    text = "\n".join(sections)
    Path(output_path).write_text(text)
    return text
