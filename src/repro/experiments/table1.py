"""Table 1 — statistical properties of the real-dataset substitutes.

Prints the six statistics (min, max, mean, median, std.dev, skew) of
every synthesized column next to the values the paper publishes for the
original crawls, so the quality of the substitution is auditable.
"""

from __future__ import annotations

from ..datagen.web import (
    PAPER_TABLE1,
    REAL_WEB_SIZE,
    REAL_XML_SIZE,
    _web_columns,
    _xml_columns,
    column_stats,
)
from .harness import ResultTable

__all__ = ["run"]


def run(
    *,
    n_web: int = REAL_WEB_SIZE,
    n_xml: int = REAL_XML_SIZE,
    seed: int = 0,
) -> ResultTable:
    """Regenerate Table 1 at the given dataset sizes."""
    indegree, outdegree = _web_columns(n_web, seed)
    size, xml_outdegree = _xml_columns(n_xml, seed)
    columns = [
        ("real_web_indegree", indegree),
        ("real_web_outdegree", outdegree),
        ("real_xml_size", size),
        ("real_xml_outdegree", xml_outdegree),
    ]
    table = ResultTable(
        "Table 1: statistical properties of the real_web and real_xml datasets",
        ("dataset", "source", "min", "max", "mean", "median", "std.dev", "skew"),
        notes=(
            "'ours' rows are the synthetic substitutes "
            f"(n_web={n_web}, n_xml={n_xml}); 'paper' rows are published."
        ),
    )
    for name, values in columns:
        ours = column_stats(values)
        table.add(name, "ours", *ours.as_row())
        table.add(name, "paper", *PAPER_TABLE1[name].as_row())
    return table
