"""Figure 14 — breakdown of RJI construction time (unif dataset).

Three components, as in the paper: ``tDom`` (computing the dominating
set, one pass over the join result), ``tSep`` (computing, sorting and
sweeping the separating points) and ``tBLoad`` (bulk-loading the B+-tree
and region heap onto pages).  Published shape: tDom grows linearly with
join size and dominates at large n (panel a); tSep grows with K and
dominates at large K (panel b).
"""

from __future__ import annotations

import time

from ..core.index import RankedJoinIndex
from ..storage.diskindex import DiskRankedJoinIndex
from .datasets import make_pairs
from .harness import ResultTable

__all__ = ["run", "build_breakdown", "PAPER_PARAMS", "DEFAULT_PARAMS"]

PAPER_PARAMS = dict(
    sizes=(50_000, 200_000, 400_000, 600_000, 800_000, 1_000_000),
    fixed_k=100,
    ks=(10, 50, 100, 200, 300, 400, 500),
    fixed_size=50_000,
)
DEFAULT_PARAMS = dict(
    sizes=(5_000, 10_000, 20_000, 40_000),
    fixed_k=50,
    ks=(10, 25, 50, 100),
    fixed_size=10_000,
)


def build_breakdown(pairs, k: int) -> tuple[float, float, float]:
    """``(tDom, tSep, tBLoad)`` seconds for one index build."""
    index = RankedJoinIndex.build(pairs, k)
    started = time.perf_counter()
    DiskRankedJoinIndex(index)
    t_bload = time.perf_counter() - started
    return (
        index.stats.time_dominating,
        index.stats.time_separating,
        t_bload,
    )


def run(
    *,
    sizes: tuple[int, ...] = DEFAULT_PARAMS["sizes"],
    fixed_k: int = DEFAULT_PARAMS["fixed_k"],
    ks: tuple[int, ...] = DEFAULT_PARAMS["ks"],
    fixed_size: int = DEFAULT_PARAMS["fixed_size"],
    seed: int = 0,
) -> list[ResultTable]:
    """Regenerate both panels of Figure 14."""
    panel_a = ResultTable(
        f"Figure 14(a): RJI build breakdown vs join size (unif, K={fixed_k})",
        ("join size", "tDom (s)", "tSep (s)", "tBLoad (s)", "total (s)"),
        notes="paper shape: tDom grows with join size and dominates",
    )
    for size in sizes:
        pairs = make_pairs("unif", size, seed=seed)
        t_dom, t_sep, t_bload = build_breakdown(pairs, fixed_k)
        panel_a.add(
            size,
            round(t_dom, 4),
            round(t_sep, 4),
            round(t_bload, 4),
            round(t_dom + t_sep + t_bload, 4),
        )

    panel_b = ResultTable(
        f"Figure 14(b): RJI build breakdown vs K (unif, join size={fixed_size})",
        ("K", "tDom (s)", "tSep (s)", "tBLoad (s)", "total (s)"),
        notes="paper shape: tSep grows with K and dominates at large K",
    )
    pairs = make_pairs("unif", fixed_size, seed=seed)
    for k in ks:
        t_dom, t_sep, t_bload = build_breakdown(pairs, k)
        panel_b.add(
            k,
            round(t_dom, 4),
            round(t_sep, 4),
            round(t_bload, 4),
            round(t_dom + t_sep + t_bload, 4),
        )
    return [panel_a, panel_b]
