"""Terminal line charts for the figure experiments.

The paper's evaluation is presented as plots; these helpers render the
regenerated series as ASCII line charts so the CLI and the saved
benchmark results show the same *shapes* the figures do, not just rows.
Each series gets a letter marker; collisions render as ``*``.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..errors import ReproError

__all__ = ["line_chart", "series_from_table"]

_MARKERS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 10000 or abs(value) < 0.01:
        return f"{value:.1e}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.3g}"


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    title: str = "",
    width: int = 64,
    height: int = 16,
    log_y: bool = False,
) -> str:
    """Render named ``(x, y)`` series as an ASCII chart.

    ``log_y=True`` plots on a log10 y-axis (every y must be positive).
    Points are plotted at their nearest cell; consecutive points of a
    series are connected with linear interpolation so trends read as
    lines.
    """
    cleaned = {name: list(points) for name, points in series.items() if points}
    if not cleaned:
        raise ReproError("line_chart needs at least one non-empty series")
    if len(cleaned) > len(_MARKERS):
        raise ReproError(f"too many series ({len(cleaned)})")

    def transform(y: float) -> float:
        if not log_y:
            return y
        if y <= 0:
            raise ReproError("log_y requires positive values")
        return math.log10(y)

    xs = [x for pts in cleaned.values() for x, _ in pts]
    ys = [transform(y) for pts in cleaned.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    def cell(x: float, y: float) -> tuple[int, int]:
        col = round((x - x_lo) / x_span * (width - 1))
        row = round((transform(y) - y_lo) / y_span * (height - 1))
        return row, col

    grid = [[" "] * width for _ in range(height)]

    def plot(row: int, col: int, marker: str) -> None:
        current = grid[row][col]
        grid[row][col] = marker if current in (" ", marker) else "*"

    for marker, (name, points) in zip(_MARKERS, sorted(cleaned.items())):
        ordered = sorted(points)
        previous = None
        for x, y in ordered:
            row, col = cell(x, y)
            if previous is not None:
                prow, pcol = previous
                steps = max(abs(col - pcol), abs(row - prow))
                for step in range(1, steps):
                    interp_col = round(pcol + (col - pcol) * step / steps)
                    interp_row = round(prow + (row - prow) * step / steps)
                    if grid[interp_row][interp_col] == " ":
                        grid[interp_row][interp_col] = "."
            plot(row, col, marker)
            previous = (row, col)

    # Assemble with a y-axis gutter (top = max).
    def y_value_at(row: int) -> float:
        raw = y_lo + y_span * row / (height - 1 or 1)
        return 10**raw if log_y else raw

    gutter = max(len(_format_tick(y_value_at(r))) for r in (0, height - 1)) + 1
    lines: list[str] = []
    if title:
        lines.append(title)
    for row in range(height - 1, -1, -1):
        label = ""
        if row in (0, height // 2, height - 1):
            label = _format_tick(y_value_at(row))
        lines.append(f"{label:>{gutter}} |" + "".join(grid[row]))
    axis = f"{'':>{gutter}} +" + "-" * width
    lines.append(axis)
    x_left = _format_tick(x_lo)
    x_right = _format_tick(x_hi)
    pad = width - len(x_left) - len(x_right)
    lines.append(f"{'':>{gutter}}  {x_left}{' ' * max(pad, 1)}{x_right}")
    legend = "   ".join(
        f"{marker}={name}"
        for marker, name in zip(_MARKERS, sorted(cleaned))
    )
    lines.append(f"{'':>{gutter}}  {legend}" + ("   [log y]" if log_y else ""))
    return "\n".join(lines)


def series_from_table(
    table, *, x: str, y: str, group_by: str | None = None
) -> dict[str, list[tuple[float, float]]]:
    """Extract chart series from a :class:`ResultTable`.

    ``x`` and ``y`` name columns; ``group_by`` (optional) names the
    column whose distinct values become separate series.
    """
    xs = table.column(x)
    ys = table.column(y)
    if group_by is None:
        return {y: list(zip(map(float, xs), map(float, ys)))}
    groups = table.column(group_by)
    out: dict[str, list[tuple[float, float]]] = {}
    for g, xv, yv in zip(groups, xs, ys):
        out.setdefault(str(g), []).append((float(xv), float(yv)))
    return out
