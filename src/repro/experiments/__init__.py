"""Experiment harness regenerating every table and figure of the paper."""

from . import (
    ablations,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    latency,
    table1,
)
from .datasets import DATASETS, make_pairs
from .harness import ResultTable, Timer, format_bytes
from .runall import EXPERIMENTS, run_all, run_one

__all__ = [
    "DATASETS",
    "EXPERIMENTS",
    "ResultTable",
    "Timer",
    "ablations",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "format_bytes",
    "latency",
    "make_pairs",
    "run_all",
    "run_one",
    "table1",
]
