"""Figure 13 — Dom and Sep sizes as the join result grows.

The paper sweeps the join size from 50,000 to 1,000,000 tuples for the
unif and Zipf2 datasets at K in {50, 100, 500}: both |Dom| and |Sep|
stay roughly flat, which is what decouples RJI construction cost from
join size.
"""

from __future__ import annotations

from ..core.dominance import dominating_set
from ..core.sweep import sweep_regions
from .datasets import make_pairs
from .harness import ResultTable

__all__ = ["run", "plots", "PAPER_PARAMS", "DEFAULT_PARAMS"]

PAPER_PARAMS = dict(
    sizes=(50_000, 200_000, 400_000, 600_000, 800_000, 1_000_000),
    ks=(50, 100, 500),
    datasets=("unif", "zipf2"),
)
DEFAULT_PARAMS = dict(
    sizes=(5_000, 10_000, 20_000, 40_000),
    ks=(25, 50, 100),
    datasets=("unif", "zipf2"),
)


def run(
    *,
    sizes: tuple[int, ...] = DEFAULT_PARAMS["sizes"],
    ks: tuple[int, ...] = DEFAULT_PARAMS["ks"],
    datasets: tuple[str, ...] = DEFAULT_PARAMS["datasets"],
    seed: int = 0,
) -> ResultTable:
    """Regenerate Figure 13's series."""
    table = ResultTable(
        "Figure 13: |Dom| and |Sep| vs join result size",
        ("dataset", "join size", "K", "|Dom|", "|Sep|"),
        notes="paper shape: both stay roughly flat as the join grows",
    )
    for name in datasets:
        for size in sizes:
            pairs = make_pairs(name, size, seed=seed)
            for k in ks:
                dom = dominating_set(pairs, k)
                _, stats = sweep_regions(dom, k)
                table.add(name, size, k, len(dom), stats.n_separating)
    return table


def plots(table) -> str:
    """ASCII shape plot: |Dom| vs join size, one series per (dataset, K)."""
    from .asciiplot import line_chart

    series: dict[str, list[tuple[float, float]]] = {}
    for dataset, size, k, dom, _sep in table.rows:
        series.setdefault(f"{dataset} K={k}", []).append(
            (float(size), float(dom))
        )
    return line_chart(
        series, title="Figure 13 shape: |Dom| stays flat as the join grows"
    )
