"""Run every experiment and print its tables.

Two scales: ``small`` (default; minutes on a laptop) uses the
downscaled parameters, ``paper`` uses the published sizes (50,000-tuple
joins, K up to 500, 1M-tuple sweeps) and can take considerably longer.
"""

from __future__ import annotations

from . import (
    ablations,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    latency,
    table1,
)
from .harness import ResultTable

__all__ = ["run_all", "run_one", "EXPERIMENTS"]

EXPERIMENTS = (
    "table1",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "ablation-merge",
    "ablation-variants",
    "ablation-baselines",
    "ablation-selection",
    "ablation-correlation",
    "latency",
)


def _as_tables(result) -> list[ResultTable]:
    if isinstance(result, ResultTable):
        return [result]
    if isinstance(result, tuple):  # (table, picture) from fig12
        tables = [item for item in result if isinstance(item, ResultTable)]
        for item in result:
            if isinstance(item, str) and item:
                print(item)
        return tables
    return list(result)


def run_one(name: str, *, scale: str = "small", seed: int = 0) -> list[ResultTable]:
    """Run one experiment by name and return its tables."""
    paper = scale == "paper"
    if name == "table1":
        if paper:
            return _as_tables(table1.run(seed=seed))
        return _as_tables(table1.run(n_web=60_000, n_xml=40_000, seed=seed))
    if name == "fig11":
        params = fig11.PAPER_PARAMS if paper else fig11.DEFAULT_PARAMS
        return _as_tables(fig11.run(**params, seed=seed))
    if name == "fig12":
        if paper:
            return _as_tables(
                fig12.run(**fig12.PAPER_PARAMS, seed=seed)
            )
        return _as_tables(fig12.run(seed=seed))
    if name == "fig13":
        params = fig13.PAPER_PARAMS if paper else fig13.DEFAULT_PARAMS
        return _as_tables(fig13.run(**params, seed=seed))
    if name == "fig14":
        params = fig14.PAPER_PARAMS if paper else fig14.DEFAULT_PARAMS
        return _as_tables(fig14.run(**params, seed=seed))
    if name == "fig15":
        params = fig15.PAPER_PARAMS if paper else fig15.DEFAULT_PARAMS
        return _as_tables(fig15.run(**params, seed=seed))
    if name == "fig16":
        params = fig16.PAPER_PARAMS if paper else fig16.DEFAULT_PARAMS
        return _as_tables(fig16.run(**params, seed=seed))
    if name == "ablation-merge":
        return _as_tables(ablations.run_merge(seed=seed))
    if name == "ablation-variants":
        return _as_tables(ablations.run_variants(seed=seed))
    if name == "ablation-baselines":
        return _as_tables(ablations.run_baselines(seed=seed))
    if name == "ablation-selection":
        if paper:
            return _as_tables(ablations.run_selection(n=50_000, seed=seed))
        return _as_tables(ablations.run_selection(n=8_000, seed=seed))
    if name == "ablation-correlation":
        if paper:
            return _as_tables(ablations.run_correlation(join_size=50_000, seed=seed))
        return _as_tables(ablations.run_correlation(join_size=8_000, seed=seed))
    if name == "latency":
        if paper:
            return _as_tables(
                latency.run(join_size=50_000, n_queries=500, seed=seed)
            )
        return _as_tables(latency.run(join_size=8_000, n_queries=150, seed=seed))
    raise ValueError(f"unknown experiment {name!r}; choose from {EXPERIMENTS}")


def run_all(*, scale: str = "small", seed: int = 0) -> list[ResultTable]:
    """Run every experiment, printing each table as it completes."""
    all_tables: list[ResultTable] = []
    for name in EXPERIMENTS:
        tables = run_one(name, scale=scale, seed=seed)
        for table in tables:
            print(table.render())
            print()
        all_tables.extend(tables)
    return all_tables
