"""Ablations beyond the paper's figures.

* :func:`run_merge` quantifies the §6.2 space/time trade-off directly:
  sweeping the merge slack m trades separating points (space) against
  per-query evaluated tuples (time), including the adaptive-vs-fixed
  strategy comparison the paper describes qualitatively.
* :func:`run_variants` compares the three RJI flavours (standard,
  merged, ordered) on one dataset — the two endpoints of the trade-off
  plus the default.
* :func:`run_baselines` positions the RJI against the no-preprocessing
  competitors (HRJN pipelined rank join, full-scan) across join sizes,
  the regime where Natsev et al. [14]-style operators pay per query what
  the RJI paid once at build time.
* :func:`run_selection` covers the single-relation claim of Section 2:
  the RJI specialization vs the Onion technique of Chang et al. [5]
  (the indexing competitor the paper cites) vs a full scan.
* :func:`run_correlation` quantifies Example 1's worst case: the
  dominating set (and hence index size) as a function of the rank-pair
  correlation, from strongly correlated (best case) to strongly
  anti-correlated (the antichain regime where nothing is pruned).
"""

from __future__ import annotations

import time

from ..baselines.fullscan import FullScanTopK
from ..baselines.hrjn import HRJN
from ..baselines.onion import OnionIndex
from ..core.index import RankedJoinIndex
from ..core.dominance import dominating_set
from ..core.sweep import sweep_regions
from ..datagen.synthetic import correlated_pairs, random_keyed_relations
from ..core.workloads import random_preferences
from ..relalg.joins import rank_join_candidates, rank_join_full
from ..storage.diskindex import DiskRankedJoinIndex
from .datasets import make_pairs
from .harness import ResultTable, format_bytes

__all__ = [
    "run_merge",
    "run_variants",
    "run_baselines",
    "run_selection",
    "run_correlation",
]


def _mean_micros(func, preferences, k: int) -> float:
    started = time.perf_counter()
    for preference in preferences:
        func(preference, k)
    return (time.perf_counter() - started) / len(preferences) * 1e6


def run_merge(
    *,
    join_size: int = 10_000,
    k: int = 50,
    slacks: tuple[int, ...] = (0, 1, 2, 5, 10, 25, 50),
    n_queries: int = 200,
    seed: int = 0,
) -> ResultTable:
    """Merge-slack sweep: regions, bytes and query time per strategy."""
    pairs = make_pairs("unif", join_size, seed=seed)
    preferences = random_preferences(n_queries, seed=seed + 1)
    table = ResultTable(
        "Ablation: region merging (Section 6.2 space/time trade-off)",
        (
            "strategy",
            "slack m",
            "regions",
            "max region width",
            "bytes",
            "query (us)",
        ),
        notes=f"unif, join size {join_size}, K={k}",
    )
    for slack in slacks:
        strategies = ("adaptive", "every") if slack else ("none",)
        for strategy in strategies:
            index = RankedJoinIndex.build(
                pairs,
                k,
                merge_slack=slack,
                merge_strategy=strategy if slack else "adaptive",
            )
            disk = DiskRankedJoinIndex(index)
            micros = _mean_micros(index.query, preferences, k)
            table.add(
                strategy,
                slack,
                index.n_regions,
                max(len(r.tids) for r in index.regions),
                format_bytes(disk.total_bytes),
                round(micros, 1),
            )
    return table


def run_variants(
    *,
    join_size: int = 10_000,
    k: int = 50,
    n_queries: int = 200,
    seed: int = 0,
) -> ResultTable:
    """Standard vs merged vs ordered RJI on the same input."""
    pairs = make_pairs("unif", join_size, seed=seed)
    preferences = random_preferences(n_queries, seed=seed + 1)
    table = ResultTable(
        "Ablation: RJI variants",
        ("variant", "regions", "bytes", "query (us)"),
        notes=f"unif, join size {join_size}, K={k}",
    )
    builds = [
        ("standard", dict()),
        ("merged (m=K)", dict(merge_slack=k)),
        ("ordered (fast query)", dict(variant="ordered")),
    ]
    for label, options in builds:
        index = RankedJoinIndex.build(pairs, k, **options)
        disk = DiskRankedJoinIndex(index)
        micros = _mean_micros(index.query, preferences, k)
        table.add(label, index.n_regions, format_bytes(disk.total_bytes), round(micros, 1))
    return table


def run_selection(
    *,
    n: int = 20_000,
    k: int = 50,
    datasets: tuple[str, ...] = ("unif", "gauss", "real_web"),
    n_queries: int = 200,
    seed: int = 0,
) -> ResultTable:
    """Top-k selection over one relation: RJI vs Onion [5] vs full scan.

    Section 2 claims the RJI construction is "the first solution to the
    top-k selection problem with monotone linear functions having
    guaranteed worst case search performance" for two rank attributes;
    Onion answers the same queries but may touch many layers.
    """
    preferences = random_preferences(n_queries, seed=seed + 1)
    table = ResultTable(
        "Ablation: single-relation top-k selection (Section 2)",
        (
            "dataset",
            "RJI query (us)",
            "Onion query (us)",
            "Onion layers/query",
            "full scan (us)",
        ),
        notes=f"n={n}, k={k}; Onion is Chang et al. [5]",
    )
    for name in datasets:
        pairs = make_pairs(name, n, seed=seed)
        index = RankedJoinIndex.build(pairs, k)
        onion = OnionIndex(pairs)
        scan = FullScanTopK(pairs)
        rji_us = _mean_micros(index.query, preferences, k)
        onion_us = _mean_micros(onion.query, preferences, k)
        layers = 0
        for preference in preferences:
            onion.query(preference, k)
            layers += onion.last_query.layers_visited
        scan_us = _mean_micros(scan.query, preferences, k)
        table.add(
            name,
            round(rji_us, 1),
            round(onion_us, 1),
            round(layers / n_queries, 1),
            round(scan_us, 1),
        )
    return table


def run_correlation(
    *,
    join_size: int = 20_000,
    k: int = 50,
    rhos: tuple[float, ...] = (-0.9, -0.5, 0.0, 0.5, 0.9),
    seed: int = 0,
) -> ResultTable:
    """Dominating-set and index size vs rank-pair correlation.

    Example 1 of the paper shows the pruning extremes; anti-correlation
    is the worst case (mutually non-dominating antichains).
    """
    table = ResultTable(
        "Ablation: pruning effectiveness vs rank correlation",
        ("rho", "|Dom|", "Dom %", "|Sep|", "RJI bytes"),
        notes=f"join size {join_size}, K={k}; anti-correlation is worst case",
    )
    for rho in rhos:
        pairs = correlated_pairs(join_size, rho=rho, seed=seed)
        dom = dominating_set(pairs, k)
        _, stats = sweep_regions(dom, k)
        index = RankedJoinIndex.build(pairs, k, merge_slack=k)
        disk = DiskRankedJoinIndex(index)
        table.add(
            rho,
            len(dom),
            round(100.0 * len(dom) / join_size, 3),
            stats.n_separating,
            disk.total_bytes,
        )
    return table


def run_baselines(
    *,
    scales: tuple[int, ...] = (2_000, 5_000, 10_000),
    multiplicity: int = 10,
    k: int = 20,
    n_queries: int = 50,
    seed: int = 0,
) -> ResultTable:
    """RJI vs HRJN vs full scan across join sizes.

    Inputs are two keyed relations of ``n`` rows each with expected join
    multiplicity ``multiplicity`` (join size ~ n * multiplicity).
    """
    preferences = random_preferences(n_queries, seed=seed + 1)
    table = ResultTable(
        "Ablation: RJI vs no-preprocessing baselines",
        (
            "~join size",
            "RJI build (s)",
            "RJI query (us)",
            "HRJN query (us)",
            "HRJN tuples/query",
            "full scan (us)",
        ),
        notes=f"k={k}; HRJN/scan pay per query, RJI pays once at build",
    )
    for n in scales:
        left, right = random_keyed_relations(
            n, n, max(1, n // multiplicity), seed=seed
        )
        started = time.perf_counter()
        candidates = rank_join_candidates(
            left, right, ("key", "key"), ("rank", "rank"), k
        )
        index = RankedJoinIndex.build(candidates, k)
        build_seconds = time.perf_counter() - started

        full = rank_join_full(left, right, ("key", "key"), ("rank", "rank"))
        scan = FullScanTopK(full)
        hrjn = HRJN(
            left.column("key"),
            left.column("rank"),
            right.column("key"),
            right.column("rank"),
        )

        rji_us = _mean_micros(index.query, preferences, k)
        hrjn_us = _mean_micros(hrjn.query, preferences, k)
        consumed = 0
        for preference in preferences:
            hrjn.query(preference, k)
            consumed += hrjn.last_stats.tuples_consumed
        scan_us = _mean_micros(scan.query, preferences, k)
        table.add(
            len(full),
            round(build_seconds, 3),
            round(rji_us, 1),
            round(hrjn_us, 1),
            round(consumed / n_queries, 1),
            round(scan_us, 1),
        )
    return table
