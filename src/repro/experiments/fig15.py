"""Figure 15 — time to answer top-k queries: RJI vs TopKrtree.

Each point averages 500 queries with uniformly random preference
directions (Section 8.3).  The paper reports RJI answering up to 17x
faster than the TopKrtree on unif and real_web; the gap comes from the
R-tree touching many tuples that turn out to be useless.

Two views are reported:

* in-memory wall-clock per query — RJI region lookup vs the Figure 10
  TopKrtreeAnswer recursion (plus the best-first variant as the R-tree's
  upper bound);
* disk work per query — page reads of the disk-resident RJI vs the
  disk-resident R-tree, both through cold LRU buffer pools.

Following Section 8.3, the RJI is built with regions merged to a 2K
distinct-tuple budget before comparison.
"""

from __future__ import annotations

import time

from ..core.dominance import dominating_set
from ..core.index import RankedJoinIndex
from ..core.workloads import random_preferences
from ..rtree.disk import DiskRTree, max_entries_for_page
from ..rtree.rtree import RTree
from ..rtree.topk import topk_best_first, topk_paper
from ..storage.diskindex import DiskRankedJoinIndex
from .datasets import make_pairs
from .harness import ResultTable

__all__ = ["run", "plots", "PAPER_PARAMS", "DEFAULT_PARAMS"]

PAPER_PARAMS = dict(
    join_size=50_000,
    ks=(10, 20, 50, 100, 200, 500),
    datasets=("unif", "real_web"),
    n_queries=500,
)
DEFAULT_PARAMS = dict(
    join_size=10_000,
    ks=(10, 25, 50, 100),
    datasets=("unif", "real_web"),
    n_queries=200,
)


def _mean_micros(func, preferences, k: int) -> float:
    started = time.perf_counter()
    for preference in preferences:
        func(preference, k)
    return (time.perf_counter() - started) / len(preferences) * 1e6


def run(
    *,
    join_size: int = DEFAULT_PARAMS["join_size"],
    ks: tuple[int, ...] = DEFAULT_PARAMS["ks"],
    datasets: tuple[str, ...] = DEFAULT_PARAMS["datasets"],
    n_queries: int = DEFAULT_PARAMS["n_queries"],
    seed: int = 0,
) -> list[ResultTable]:
    """Regenerate Figure 15 for the requested datasets."""
    k_bound = max(ks)
    preferences = random_preferences(n_queries, seed=seed + 1)

    timing = ResultTable(
        "Figure 15: mean time per top-k query (in-memory, microseconds)",
        (
            "dataset",
            "k",
            "RJI (us)",
            "TopKrtree (us)",
            "best-first rtree (us)",
            "speedup vs TopKrtree",
        ),
        notes=f"{n_queries} uniformly random preferences; join size {join_size}",
    )
    disk_io = ResultTable(
        "Figure 15 (disk view): mean page reads per top-k query",
        ("dataset", "k", "RJI pages", "R-tree pages", "R-tree tuples scored"),
        notes="cold LRU buffer pools (capacity 4 pages) on 4 KiB pages",
    )

    for name in datasets:
        pairs = make_pairs(name, join_size, seed=seed)
        index = RankedJoinIndex.build(pairs, k_bound, merge_slack=k_bound)
        dom = dominating_set(pairs, k_bound)
        tree = RTree.bulk_load(
            zip(dom.s1, dom.s2, dom.tids),
            max_entries=max_entries_for_page(),
        )
        disk_index = DiskRankedJoinIndex(index, buffer_capacity=4)
        disk_tree = DiskRTree(tree, buffer_capacity=4)

        for k in ks:
            rji_us = _mean_micros(index.query, preferences, k)
            paper_us = _mean_micros(
                lambda pref, kk: topk_paper(tree, pref, kk), preferences, k
            )
            best_us = _mean_micros(
                lambda pref, kk: topk_best_first(tree, pref, kk), preferences, k
            )
            timing.add(
                name,
                k,
                round(rji_us, 1),
                round(paper_us, 1),
                round(best_us, 1),
                round(paper_us / rji_us, 2) if rji_us else float("inf"),
            )

            rji_pages = 0
            rtree_pages = 0
            rtree_points = 0
            for preference in preferences:
                disk_index.reset_io()
                disk_index.query(preference, k)
                rji_pages += disk_index.last_query.pages_read
                disk_tree.reset_io()
                disk_tree.query(preference, k)
                rtree_pages += disk_tree.last_query.pages_read
                rtree_points += disk_tree.last_query.points_scored
            disk_io.add(
                name,
                k,
                round(rji_pages / n_queries, 2),
                round(rtree_pages / n_queries, 2),
                round(rtree_points / n_queries, 1),
            )
    return [timing, disk_io]


def plots(timing_table) -> str:
    """ASCII shape plot: per-query time vs k for both engines/datasets."""
    from .asciiplot import line_chart

    series: dict[str, list[tuple[float, float]]] = {}
    for dataset, k, rji_us, paper_us, _best, _speedup in timing_table.rows:
        series.setdefault(f"RJI {dataset}", []).append((float(k), float(rji_us)))
        series.setdefault(f"rtree {dataset}", []).append(
            (float(k), float(paper_us))
        )
    return line_chart(
        series, title="Figure 15 shape: query time vs k (RJI below R-tree)"
    )
