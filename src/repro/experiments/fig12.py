"""Figure 12 — the join result vs its dominating points (gauss dataset).

The paper visualizes the 50,000-tuple Gaussian join result with the
dominating points highlighted: the Dom set forms a thin band along the
upper-right sky of the point cloud.  This module reproduces the picture
as an ASCII density plot plus the headline counts.
"""

from __future__ import annotations

import numpy as np

from ..core.dominance import dominating_set
from .datasets import make_pairs
from .harness import ResultTable

__all__ = ["run", "render_scatter", "PAPER_PARAMS"]

PAPER_PARAMS = dict(join_size=50_000, k=100)


def render_scatter(
    pairs, dominating, *, width: int = 72, height: int = 24
) -> str:
    """ASCII scatter: '.' join tuples, '#' dominating points."""
    x_lo, x_hi = float(pairs.s1.min()), float(pairs.s1.max())
    y_lo, y_hi = float(pairs.s2.min()), float(pairs.s2.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    def cells(xs, ys):
        cols = np.clip(((xs - x_lo) / x_span * (width - 1)).astype(int), 0, width - 1)
        rows = np.clip(((ys - y_lo) / y_span * (height - 1)).astype(int), 0, height - 1)
        return rows, cols

    grid = [[" "] * width for _ in range(height)]
    rows, cols = cells(pairs.s1, pairs.s2)
    for r, c in zip(rows, cols):
        grid[r][c] = "."
    rows, cols = cells(dominating.s1, dominating.s2)
    for r, c in zip(rows, cols):
        grid[r][c] = "#"
    lines = ["".join(row) for row in reversed(grid)]  # y grows upward
    return "\n".join(lines)


def run(
    *,
    join_size: int = 20_000,
    k: int = 100,
    seed: int = 0,
    plot: bool = True,
) -> tuple[ResultTable, str]:
    """Regenerate Figure 12: counts plus (optionally) the ASCII plot."""
    pairs = make_pairs("gauss", join_size, seed=seed)
    dom = dominating_set(pairs, k)
    table = ResultTable(
        "Figure 12: join result vs dominating points (gauss)",
        ("join size", "K", "|Dom|", "Dom %"),
        notes="'#' cells in the plot are dominating points, '.' the join result",
    )
    table.add(join_size, k, len(dom), round(100.0 * len(dom) / join_size, 3))
    picture = render_scatter(pairs, dom) if plot else ""
    return table, picture
