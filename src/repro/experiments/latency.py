"""Latency distributions: percentile comparison across engines.

The paper reports mean query times; production systems care about tails.
This harness replays one preference workload against every engine (RJI
in-memory, RJI on disk, TopKrtree, best-first R-tree, HRJN, full scan)
and reports p50 / p95 / p99 / max per engine — an operational complement
to Figure 15.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..baselines.fullscan import FullScanTopK
from ..baselines.hrjn import HRJN
from ..core.dominance import dominating_set
from ..core.index import RankedJoinIndex
from ..datagen.synthetic import pairs_as_relations
from ..core.workloads import random_preferences
from ..rtree.disk import DiskRTree, max_entries_for_page
from ..rtree.rtree import RTree
from ..rtree.topk import topk_best_first, topk_paper
from ..storage.diskindex import DiskRankedJoinIndex
from .datasets import make_pairs
from .harness import ResultTable

__all__ = ["run", "percentiles"]


def percentiles(samples_us: np.ndarray) -> tuple[float, float, float, float]:
    """``(p50, p95, p99, max)`` of a latency sample, in microseconds."""
    return (
        float(np.percentile(samples_us, 50)),
        float(np.percentile(samples_us, 95)),
        float(np.percentile(samples_us, 99)),
        float(samples_us.max()),
    )


def _sample(engine: Callable, preferences, k: int) -> np.ndarray:
    out = np.empty(len(preferences))
    for i, preference in enumerate(preferences):
        started = time.perf_counter()
        engine(preference, k)
        out[i] = (time.perf_counter() - started) * 1e6
    return out


def run(
    *,
    dataset: str = "unif",
    join_size: int = 20_000,
    k_bound: int = 50,
    k: int = 10,
    n_queries: int = 300,
    seed: int = 0,
) -> ResultTable:
    """Latency percentiles of every engine on one workload."""
    pairs = make_pairs(dataset, join_size, seed=seed)
    preferences = random_preferences(n_queries, seed=seed + 1)

    index = RankedJoinIndex.build(pairs, k_bound, merge_slack=k_bound)
    disk = DiskRankedJoinIndex(index)
    dom = dominating_set(pairs, k_bound)
    tree = RTree.bulk_load(
        zip(dom.s1, dom.s2, dom.tids), max_entries=max_entries_for_page()
    )
    disk_tree = DiskRTree(tree)
    left, right = pairs_as_relations(pairs)
    hrjn = HRJN(
        left.column("key"),
        left.column("rank"),
        right.column("key"),
        right.column("rank"),
    )
    scan = FullScanTopK(pairs)

    engines = [
        ("RJI (memory)", index.query),
        ("RJI (disk)", disk.query),
        ("TopKrtree", lambda p, kk: topk_paper(tree, p, kk)),
        ("best-first rtree", lambda p, kk: topk_best_first(tree, p, kk)),
        ("rtree (disk)", disk_tree.query),
        ("HRJN", hrjn.query),
        ("full scan", scan.query),
    ]
    table = ResultTable(
        "Latency percentiles per engine (microseconds)",
        ("engine", "p50", "p95", "p99", "max"),
        notes=(
            f"{dataset}, join size {join_size}, k={k} (bound {k_bound}), "
            f"{n_queries} random preferences"
        ),
    )
    for name, engine in engines:
        p50, p95, p99, worst = percentiles(_sample(engine, preferences, k))
        table.add(name, round(p50, 1), round(p95, 1), round(p99, 1), round(worst, 1))
    return table
