"""Small reporting harness for the experiment modules.

Every experiment returns one or more :class:`ResultTable` values — the
same rows/series the paper's tables and figures report — which render as
aligned ASCII for the CLI and are asserted on by the benchmark suite.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["ResultTable", "Timer", "format_bytes"]


@dataclass
class ResultTable:
    """A titled table of result rows."""

    title: str
    headers: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: str = ""

    def add(self, *values) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells for {len(self.headers)} headers"
            )
        self.rows.append(tuple(values))

    def column(self, header: str) -> list:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        cells = [tuple(str(h) for h in self.headers)] + [
            tuple(_fmt(v) for v in row) for row in self.rows
        ]
        widths = [
            max(len(row[i]) for row in cells) for i in range(len(self.headers))
        ]
        lines = [self.title, "=" * len(self.title)]
        header_line = "  ".join(
            cell.ljust(width) for cell, width in zip(cells[0], widths)
        )
        lines.append(header_line)
        lines.append("-" * len(header_line))
        for row in cells[1:]:
            lines.append(
                "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


class Timer:
    """Accumulating wall-clock timer."""

    def __init__(self) -> None:
        self.elapsed = 0.0

    @contextmanager
    def measure(self):
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.elapsed += time.perf_counter() - start

    @staticmethod
    def time_calls(func, args_iter: Iterable[tuple]) -> tuple[float, int]:
        """Total seconds and call count of ``func(*args)`` over the iterable."""
        count = 0
        start = time.perf_counter()
        for args in args_iter:
            func(*args)
            count += 1
        return time.perf_counter() - start, count


def format_bytes(n: int) -> str:
    """Human-readable byte count (binary units)."""
    size = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f}{unit}" if unit != "B" else f"{int(size)}B"
        size /= 1024
    return f"{size:.1f}GiB"
