"""Command-line entry point: ``python -m repro.cli <command>``.

Three command families:

* experiments — one command per table/figure of the paper (see
  DESIGN.md), plus ``all`` and the parts/suppliers ``demo``;
* index tooling — ``index-build`` constructs a disk-resident ranked
  join index from two CSV files and ``index-query`` answers top-k
  queries against the saved index file;
* ``serve`` — expose a saved index over TCP behind the resilient
  serving wrapper (admission control, batching, typed errors; query it
  with :class:`repro.serve.Client`);
* ``sql`` — run a script of SQL statements (the declarative surface of
  Section 4) against an in-memory catalog.
"""

from __future__ import annotations

import argparse
import sys

from .experiments.runall import EXPERIMENTS, run_one

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the evaluation of 'Ranked Join Indices' (ICDE 2003)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    for name in (*EXPERIMENTS, "all"):
        sub = commands.add_parser(
            name, help=f"run experiment {name}" if name != "all" else "run everything"
        )
        sub.add_argument(
            "--scale",
            choices=("small", "paper"),
            default="small",
            help="'small' finishes in minutes; 'paper' uses published sizes",
        )
        sub.add_argument("--seed", type=int, default=0, help="RNG seed")

    commands.add_parser("demo", help="the paper's parts/suppliers scenario")

    build = commands.add_parser(
        "index-build", help="build a disk RJI from two CSV files"
    )
    build.add_argument("--left", required=True, help="left CSV file")
    build.add_argument("--right", required=True, help="right CSV file")
    build.add_argument(
        "--on", nargs=2, required=True, metavar=("LEFT_COL", "RIGHT_COL"),
        help="equi-join columns",
    )
    build.add_argument(
        "--ranks", nargs=2, required=True, metavar=("LEFT_RANK", "RIGHT_RANK"),
        help="rank attribute columns",
    )
    build.add_argument("-k", type=int, required=True, help="construction bound K")
    build.add_argument("--output", required=True, help="index file to write")
    build.add_argument(
        "--variant", choices=("standard", "ordered"), default="standard"
    )
    build.add_argument(
        "--merge-slack", type=int, default=0,
        help="Section 6.2 merge budget slack m (regions hold <= K+m tuples)",
    )

    query = commands.add_parser(
        "index-query", help="query a saved disk RJI"
    )
    query.add_argument("--index", required=True, help="index file from index-build")
    query.add_argument("--p1", type=float, required=True, help="weight of the left rank")
    query.add_argument("--p2", type=float, required=True, help="weight of the right rank")
    query.add_argument("-k", type=int, required=True, help="result size")

    describe = commands.add_parser(
        "index-describe", help="structural report of a saved disk RJI"
    )
    describe.add_argument("--index", required=True, help="index file")

    sql = commands.add_parser("sql", help="run SQL statements")
    source = sql.add_mutually_exclusive_group(required=True)
    source.add_argument("--execute", "-e", help="statements, ';'-separated")
    source.add_argument("--file", "-f", help="script file of statements")

    advise = commands.add_parser(
        "advise", help="recommend a construction bound K for a workload"
    )
    advise.add_argument("--left", required=True, help="left CSV file")
    advise.add_argument("--right", required=True, help="right CSV file")
    advise.add_argument(
        "--on", nargs=2, required=True, metavar=("LEFT_COL", "RIGHT_COL")
    )
    advise.add_argument(
        "--ranks", nargs=2, required=True, metavar=("LEFT_RANK", "RIGHT_RANK")
    )
    advise.add_argument(
        "--ks", required=True,
        help="comma-separated observed/anticipated k requests, e.g. 1,5,10,50",
    )
    advise.add_argument(
        "--quantile", type=float, default=0.99,
        help="workload quantile the bound must cover",
    )

    serve = commands.add_parser(
        "serve",
        help="serve a saved disk RJI over TCP (length-prefixed JSON "
        "protocol; query with repro.serve.Client)",
    )
    serve.add_argument(
        "--index", required=True, help="index file from index-build"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=7411, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--queue-bound",
        type=int,
        default=1024,
        help="admission-queue bound; beyond it requests are shed with "
        "ServerOverloadedError (default 1024)",
    )
    serve.add_argument(
        "--batch-max",
        type=int,
        default=64,
        help="max requests coalesced into one vectorized batch (default 64)",
    )
    serve.add_argument(
        "--mmap",
        action="store_true",
        help="open the index zero-copy via mmap: O(1) startup with "
        "lazy per-page checksum verification on first touch "
        "(docs/PERFORMANCE.md)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=0,
        help="hot-region cache capacity (preference angles); 0 disables "
        "(default 0)",
    )
    serve.add_argument(
        "--flight-dump",
        default=None,
        metavar="OUT.json",
        help="on unclean shutdown (abandoned queue or any non-ok "
        "request), write the flight-recorder dump here "
        "(docs/OBSERVABILITY.md)",
    )

    report = commands.add_parser(
        "report", help="regenerate EXPERIMENTS.md from benchmark results"
    )
    report.add_argument(
        "--results", default="benchmarks/results", help="results directory"
    )
    report.add_argument(
        "--output", default="EXPERIMENTS.md", help="markdown file to write"
    )
    return parser


def _demo() -> None:
    """The paper's Figure 1 scenario, end to end."""
    from .core.scoring import Preference
    from .relalg import Database, Relation

    parts = Relation.from_rows(
        [("availability", "float64"), ("name", "str"), ("supplier_id", "int64")],
        [(5.0, "PO5", 1), (2.0, "PO5", 2), (9.0, "PO5", 3)],
    )
    suppliers = Relation.from_rows(
        [("supplier_id", "int64"), ("quality", "float64")],
        [(1, 10.0), (2, 3.0), (3, 8.0)],
    )
    db = Database()
    db.register("parts", parts)
    db.register("suppliers", suppliers)
    db.create_ranked_join_index(
        "parts_by_supplier",
        "parts",
        "suppliers",
        on=("supplier_id", "supplier_id"),
        ranks=("availability", "quality"),
        k=2,
    )
    print("Top-2 parts, availability twice as important as quality:")
    print(db.top_k_join("parts_by_supplier", Preference(2.0, 1.0), 2).head_str())
    print()
    print("Top-2 parts, quality-focused buyer:")
    print(db.top_k_join("parts_by_supplier", Preference(0.5, 2.0), 2).head_str())


def _index_build(args) -> None:
    from .core.index import RankedJoinIndex
    from .relalg import rank_join_candidates, read_csv
    from .storage import DiskRankedJoinIndex

    left = read_csv(args.left)
    right = read_csv(args.right)
    candidates = rank_join_candidates(
        left, right, tuple(args.on), tuple(args.ranks), args.k
    )
    index = RankedJoinIndex.build(
        candidates, args.k, variant=args.variant, merge_slack=args.merge_slack
    )
    disk = DiskRankedJoinIndex(index)
    disk.save(args.output)
    stats = index.stats
    print(
        f"built {args.output}: |C|={stats.n_input} |Dom|={stats.n_dominating} "
        f"|Sep|={stats.n_separating} regions={index.n_regions} "
        f"bytes={disk.total_bytes}"
    )


def _index_query(args) -> None:
    from .core.pruning import decode_rid_pair
    from .core.scoring import Preference
    from .storage import DiskRankedJoinIndex

    disk = DiskRankedJoinIndex.open(args.index)
    results = disk.query(Preference(args.p1, args.p2), args.k)
    print("left_row,right_row,score")
    for result in results:
        left_row, right_row = decode_rid_pair(result.tid)
        print(f"{left_row},{right_row},{result.score:.6g}")


def _advise(args) -> None:
    from .relalg import rank_join_candidates, read_csv
    from .storage.advisor import advise_k

    requested = [int(k) for k in args.ks.split(",") if k.strip()]
    left = read_csv(args.left)
    right = read_csv(args.right)
    max_k = max(requested)
    candidates = rank_join_candidates(
        left, right, tuple(args.on), tuple(args.ranks), max_k * 4
    )
    report = advise_k(
        candidates, requested, coverage_quantile=args.quantile
    )
    print(report.render())


def _serve(args) -> None:
    import json as _json
    import time as _time

    from .obs import ContextRecorder, MetricsRecorder
    from .serve import QueryServer
    from .storage import DiskRankedJoinIndex
    from .storage.resilient import ResilientDiskRankedJoinIndex

    # One ContextRecorder shared between the index and the server: the
    # pager's page-read events then carry the trace id of the request
    # that caused them, so `python -m repro.obs tail --trace ID` follows
    # a query all the way down to disk.
    recorder = ContextRecorder(MetricsRecorder())
    disk = DiskRankedJoinIndex.open(
        args.index,
        mmap=args.mmap,
        cache_size=args.cache_size,
        recorder=recorder,
    )
    service = ResilientDiskRankedJoinIndex(disk)
    server = QueryServer(
        service,
        host=args.host,
        port=args.port,
        queue_bound=args.queue_bound,
        batch_max=args.batch_max,
        recorder=recorder,
        flight_path=args.flight_dump,
    )
    with server:
        host, port = server.address
        open_mode = "mmap (zero-copy)" if args.mmap else "eager"
        print(
            f"serving {args.index} (K={service.k_bound}) on {host}:{port} "
            f"(queue_bound={args.queue_bound}, batch_max={args.batch_max}, "
            f"open={open_mode}, cache_size={args.cache_size}); "
            f"live view: python -m repro.obs top {host} {port}; "
            "Ctrl-C to stop"
        )
        try:
            while True:
                _time.sleep(1.0)
        except KeyboardInterrupt:
            print(f"shutting down: {server.stats()}")
            print(
                "last window: "
                f"{_json.dumps(server.window.snapshot(), sort_keys=True)}"
            )


def _sql(args) -> None:
    from .relalg.relation import Relation
    from .sql import SQLDatabase

    if args.execute is not None:
        script = args.execute
    else:
        with open(args.file) as handle:
            script = handle.read()
    engine = SQLDatabase()
    for result in engine.run_script(script):
        if isinstance(result, Relation):
            print(result.head_str(limit=50))
        else:
            print(result)


def main(argv: list[str] | None = None) -> int:
    """Dispatch one CLI invocation; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "demo":
        _demo()
    elif args.command == "index-build":
        _index_build(args)
    elif args.command == "index-query":
        _index_query(args)
    elif args.command == "index-describe":
        from .storage import DiskRankedJoinIndex

        print(DiskRankedJoinIndex.open(args.index).describe())
    elif args.command == "serve":
        _serve(args)
    elif args.command == "sql":
        _sql(args)
    elif args.command == "advise":
        _advise(args)
    elif args.command == "report":
        from .experiments.report import generate_report

        generate_report(args.results, args.output)
        print(f"wrote {args.output}")
    else:
        names = EXPERIMENTS if args.command == "all" else (args.command,)
        for name in names:
            for table in run_one(name, scale=args.scale, seed=args.seed):
                print(table.render())
                print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
