"""Full-scan baseline: score every materialized join tuple.

The conceptually simplest correct competitor — materialize the join's
rank pairs once, then answer each query by scoring all of them and
partially sorting.  Linear work per query; used as the correctness
oracle throughout the test suite and as the lower baseline in the
ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from ..core.index import QueryResult
from ..core.scoring import Preference
from ..core.tuples import RankTupleSet
from ..errors import QueryError

__all__ = ["FullScanTopK"]


class FullScanTopK:
    """Vectorized linear-scan top-k over a materialized rank-pair set."""

    def __init__(self, tuples: RankTupleSet):
        self.tuples = tuples

    def __len__(self) -> int:
        return len(self.tuples)

    # A full scan has no construction bound: any k is answerable.
    def query(self, preference: Preference, k: int) -> list[QueryResult]:  # rjilint: disable=RJI007
        """Exact top-k by full scan; ties broken like the RJI (s1 desc, tid)."""
        if k < 1:
            raise QueryError(f"k must be positive, got {k}")
        tuples = self.tuples
        n = len(tuples)
        if n == 0:
            return []
        scores = preference.p1 * tuples.s1 + preference.p2 * tuples.s2
        k_eff = min(k, n)
        if k_eff < n:
            # Cheap partial selection first, exact ordering on the survivors.
            candidates = np.argpartition(-scores, k_eff - 1)[:k_eff]
        else:
            candidates = np.arange(n)
        order = np.lexsort(
            (
                tuples.tids[candidates],
                -tuples.s1[candidates],
                -scores[candidates],
            )
        )
        chosen = candidates[order]
        return [
            QueryResult(int(tuples.tids[p]), float(scores[p])) for p in chosen
        ]
