"""Baselines: full scan, HRJN pipelined rank join, and the Onion index."""

from .fullscan import FullScanTopK
from .hrjn import HRJN, HRJNStats
from .onion import OnionIndex, OnionQueryStats, convex_hull_indices

__all__ = [
    "FullScanTopK",
    "HRJN",
    "HRJNStats",
    "OnionIndex",
    "OnionQueryStats",
    "convex_hull_indices",
]
