"""The Onion technique (Chang et al., SIGMOD 2000) — cited baseline [5].

The paper positions itself against Onion for top-k *selection* with
linear scoring: Onion indexes a point set by peeling convex hull layers
(the "onion"), exploiting the fact that the maximizer of any linear
function lies on the convex hull.  A top-k query evaluates layers
outward-in, and may stop after layer ``d + k - 1`` in the worst case
(here ``d = k`` suffices in 2-d with the outward peeling because each
layer contributes at least one of the top elements); crucially, as the
paper notes, Onion "does not provide guarantees for its performance and
in the worst case the entire data set has to be examined".

This implementation peels layers with Andrew's monotone-chain convex
hull (including collinear boundary points, which is required for
correctness: a collinear boundary point can still be the unique linear
maximizer's runner-up).  The query scans layers in order, keeping a
bounded answer heap, and stops once an entire layer cannot contribute —
every point of layer ``i+1`` is dominated in score by some point of
layer ``i`` for the same linear function, so after ``k`` layers have
been fully merged the answer is final.

Restriction to non-negative weights: with preferences in the positive
quadrant only the upper-right portion of each hull matters, but peeling
full hulls keeps the structure usable for arbitrary linear functions,
matching the original technique.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..core.hull import convex_hull_indices
from ..core.index import QueryResult
from ..core.scoring import Preference
from ..core.tuples import RankTupleSet
from ..errors import ConstructionError, QueryError

__all__ = ["OnionIndex", "OnionQueryStats", "convex_hull_indices"]


@dataclass
class OnionQueryStats:
    """Work counters of one Onion query."""

    layers_visited: int = 0
    points_scored: int = 0


class OnionIndex:
    """Convex-hull layers over rank pairs, answering linear top-k."""

    def __init__(self, tuples: RankTupleSet):
        if len(tuples) == 0:
            raise ConstructionError("cannot build an Onion index over no tuples")
        self.tuples = tuples
        self.layers: list[np.ndarray] = []  # positions per layer
        remaining = np.arange(len(tuples))
        points = np.column_stack([tuples.s1, tuples.s2])
        while len(remaining):
            hull_local = convex_hull_indices(points[remaining])
            layer = remaining[hull_local]
            self.layers.append(np.sort(layer))
            mask = np.ones(len(remaining), dtype=bool)
            mask[hull_local] = False
            remaining = remaining[mask]
        self.last_query = OnionQueryStats()

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    # Onion indexes the whole input (no construction bound K).
    def query(self, preference: Preference, k: int) -> list[QueryResult]:  # rjilint: disable=RJI007
        """Exact top-k: merge layers outward-in until k layers contribute.

        The linear maximizer over the points inside layer ``i`` lies on
        layer ``i+1``'s hull, so after fully merging ``min(k, n_layers)``
        layers the heap holds the exact answer.
        """
        if k < 1:
            raise QueryError(f"k must be positive, got {k}")
        p1, p2 = preference.p1, preference.p2
        stats = OnionQueryStats()
        heap: list[tuple[float, int]] = []  # min-heap of (score, -tid)
        for depth, layer in enumerate(self.layers):
            if depth >= k and len(heap) >= k:
                break
            stats.layers_visited += 1
            scores = p1 * self.tuples.s1[layer] + p2 * self.tuples.s2[layer]
            stats.points_scored += len(layer)
            for position, score in zip(layer, scores):
                item = (float(score), -int(self.tuples.tids[position]))
                if len(heap) < k:
                    heapq.heappush(heap, item)
                elif item > heap[0]:
                    heapq.heappushpop(heap, item)
        self.last_query = stats
        ordered = sorted(heap, key=lambda item: (-item[0], -item[1]))
        return [QueryResult(-neg_tid, score) for score, neg_tid in ordered]

    def check_invariants(self) -> None:
        """Layers partition the input; every layer is a convex position set."""
        seen: set[int] = set()
        total = 0
        for layer in self.layers:
            total += len(layer)
            overlap = seen.intersection(int(p) for p in layer)
            if overlap:
                raise ConstructionError(f"positions {overlap} in two layers")
            seen.update(int(p) for p in layer)
        if total != len(self.tuples):
            raise ConstructionError(
                f"layers hold {total} points, input has {len(self.tuples)}"
            )
