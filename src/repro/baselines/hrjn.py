"""HRJN — a pipelined hash rank-join (no preprocessing).

Represents the class of techniques the paper compares against in spirit
(Natsev et al. [14]; Ilyas et al. [13]): nothing is precomputed, each
query re-joins the inputs incrementally.  Both inputs are consumed in
decreasing order of their rank attribute; each pulled tuple probes the
hash table of the opposite side to form join results, and processing
stops once ``k`` buffered results score at least the HRJN threshold

    T = max(p1*x_top + p2*y_cur,  p1*x_cur + p2*y_top)

where ``x_top/y_top`` are the first (largest) ranks of each input and
``x_cur/y_cur`` the ranks at the current read positions: no unseen join
combination can beat ``T``.

Per-query work adapts to the preference: balanced preferences stop
early, lopsided ones read deep into one input.  The work counters let
benchmarks report depth alongside latency.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..core.index import QueryResult
from ..core.pruning import encode_rid_pair
from ..core.scoring import Preference
from ..errors import QueryError

__all__ = ["HRJN", "HRJNStats"]


@dataclass
class HRJNStats:
    """Work performed by one HRJN query."""

    left_consumed: int = 0
    right_consumed: int = 0
    pairs_formed: int = 0

    @property
    def tuples_consumed(self) -> int:
        return self.left_consumed + self.right_consumed


class HRJN:
    """Pipelined rank join over two keyed, ranked inputs.

    Construction sorts each input by rank once (this is the only shared
    state across queries — it stands in for the ranked access paths the
    operators of [13, 14] assume); every query then runs the incremental
    join from scratch.
    """

    def __init__(
        self,
        left_keys: np.ndarray,
        left_ranks: np.ndarray,
        right_keys: np.ndarray,
        right_ranks: np.ndarray,
    ):
        self._left_keys = np.asarray(left_keys)
        self._left_ranks = np.asarray(left_ranks, dtype=np.float64)
        self._right_keys = np.asarray(right_keys)
        self._right_ranks = np.asarray(right_ranks, dtype=np.float64)
        self._left_order = np.argsort(-self._left_ranks, kind="stable")
        self._right_order = np.argsort(-self._right_ranks, kind="stable")
        self.last_stats = HRJNStats()

    # HRJN is bound-free: it can rank to any depth, so no K check.
    def query(self, preference: Preference, k: int) -> list[QueryResult]:  # rjilint: disable=RJI007
        """Exact top-k of the equi-join under ``preference``."""
        if k < 1:
            raise QueryError(f"k must be positive, got {k}")
        p1, p2 = preference.p1, preference.p2
        stats = HRJNStats()
        left_order, right_order = self._left_order, self._right_order
        n_left, n_right = len(left_order), len(right_order)
        if n_left == 0 or n_right == 0:
            self.last_stats = stats
            return []

        x_top = float(self._left_ranks[left_order[0]])
        y_top = float(self._right_ranks[right_order[0]])
        x_cur, y_cur = x_top, y_top
        seen_left: dict = defaultdict(list)
        seen_right: dict = defaultdict(list)
        answers: list[tuple[float, int]] = []  # min-heap of (score, -tid)

        def offer(score: float, tid: int) -> None:
            if len(answers) < k:
                heapq.heappush(answers, (score, -tid))
            elif (score, -tid) > answers[0]:
                heapq.heappushpop(answers, (score, -tid))

        i = j = 0
        while i < n_left or j < n_right:
            # Pull from the side whose current rank bounds the threshold
            # more (HRJN's balancing strategy); fall back when exhausted.
            pull_left = j >= n_right or (
                i < n_left and p1 * x_cur >= p2 * y_cur
            )
            if pull_left:
                rid = int(left_order[i])
                i += 1
                stats.left_consumed += 1
                x_cur = float(self._left_ranks[rid])
                key = self._left_keys[rid]
                seen_left[key].append(rid)
                for other in seen_right.get(key, ()):
                    stats.pairs_formed += 1
                    score = p1 * x_cur + p2 * float(self._right_ranks[other])
                    offer(score, encode_rid_pair(rid, other))
            else:
                rid = int(right_order[j])
                j += 1
                stats.right_consumed += 1
                y_cur = float(self._right_ranks[rid])
                key = self._right_keys[rid]
                seen_right[key].append(rid)
                for other in seen_left.get(key, ()):
                    stats.pairs_formed += 1
                    score = p1 * float(self._left_ranks[other]) + p2 * y_cur
                    offer(score, encode_rid_pair(other, rid))
            threshold = max(
                p1 * x_top + p2 * y_cur, p1 * x_cur + p2 * y_top
            )
            if len(answers) == k and answers[0][0] >= threshold:
                break

        self.last_stats = stats
        ordered = sorted(answers, key=lambda item: (-item[0], -item[1]))
        return [QueryResult(-neg_tid, score) for score, neg_tid in ordered]
