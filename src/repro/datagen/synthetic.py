"""Synthetic rank-pair generators matching Section 8.1.

The paper evaluates on join results whose rank-value pairs are sampled
from uniform, Gaussian and generalized-Zipfian distributions; these
generators produce those joint distributions directly as
:class:`~repro.core.tuples.RankTupleSet` values (the tuple id standing
for the join tuple).  :func:`pairs_as_relations` lifts a pair set back
into two base relations whose equi-join reproduces it exactly, for the
relational-layer integration paths.

Beyond the paper's three families, :func:`correlated_pairs` adds the
correlated / anti-correlated regimes classically used for dominance
analysis — anti-correlation is the worst case for dominating-set pruning
(Example 1 of the paper), and the ablation benchmarks quantify that.
"""

from __future__ import annotations

import numpy as np

from ..core.tuples import RankTupleSet
from ..errors import ConstructionError
from ..relalg.relation import Relation
from ..relalg.schema import Schema

__all__ = [
    "uniform_pairs",
    "gaussian_pairs",
    "zipf_pairs",
    "correlated_pairs",
    "pairs_as_relations",
    "random_keyed_relations",
]


def uniform_pairs(
    n: int, *, low: float = 0.0, high: float = 100.0, seed: int = 0
) -> RankTupleSet:
    """The paper's *unif* dataset: both ranks uniform on ``[low, high]``."""
    rng = np.random.default_rng(seed)
    return RankTupleSet.from_pairs(
        rng.uniform(low, high, n), rng.uniform(low, high, n)
    )


def gaussian_pairs(
    n: int, *, mean: float = 400.0, std: float = 5.0, seed: int = 0
) -> RankTupleSet:
    """The paper's *gauss* dataset: independent N(mean, std) ranks.

    The published parameters are mean 400 and standard deviation 5.
    """
    rng = np.random.default_rng(seed)
    return RankTupleSet.from_pairs(
        rng.normal(mean, std, n), rng.normal(mean, std, n)
    )


def zipf_pairs(
    n: int,
    *,
    skew: float,
    n_values: int = 1000,
    low: float = 0.0,
    high: float = 100.0,
    seed: int = 0,
) -> RankTupleSet:
    """Generalized Zipfian ranks (the paper's *Zipf0.1* / *Zipf2*).

    The value domain is ``n_values`` equally spaced points on
    ``[low, high]``; the i-th most frequent value occurs with frequency
    proportional to ``1 / i**skew``.  Following the shape of ranked web
    data, small values are the frequent ones, leaving a sparse tail of
    high-ranked tuples.
    """
    if skew < 0:
        raise ConstructionError(f"zipf skew must be non-negative, got {skew}")
    if n_values < 2:
        raise ConstructionError("zipf needs at least two domain values")
    rng = np.random.default_rng(seed)
    values = np.linspace(low, high, n_values)
    frequencies = 1.0 / np.arange(1, n_values + 1, dtype=np.float64) ** skew
    probabilities = frequencies / frequencies.sum()
    s1 = rng.choice(values, size=n, p=probabilities)
    s2 = rng.choice(values, size=n, p=probabilities)
    # Break ties among the heavily repeated domain values with a hair of
    # jitter so rank pairs stay distinct points (matches continuous data
    # collected in practice; the index is exact either way).
    spacing = (high - low) / (n_values - 1)
    s1 = s1 + rng.uniform(0.0, spacing * 1e-3, n)
    s2 = s2 + rng.uniform(0.0, spacing * 1e-3, n)
    return RankTupleSet.from_pairs(s1, s2)


def correlated_pairs(
    n: int,
    *,
    rho: float,
    low: float = 0.0,
    high: float = 100.0,
    seed: int = 0,
) -> RankTupleSet:
    """Gaussian-copula ranks with correlation ``rho`` on ``[low, high]``.

    ``rho > 0`` produces correlated ranks (tiny dominating sets),
    ``rho < 0`` anti-correlated ones (the dominating set approaches the
    worst case of Lemma 1).
    """
    if not -1.0 < rho < 1.0:
        raise ConstructionError(f"rho must be in (-1, 1), got {rho}")
    rng = np.random.default_rng(seed)
    z1 = rng.standard_normal(n)
    z2 = rho * z1 + np.sqrt(1.0 - rho * rho) * rng.standard_normal(n)

    def to_range(z: np.ndarray) -> np.ndarray:
        order = np.argsort(np.argsort(z))
        return low + (high - low) * (order + 0.5) / n

    return RankTupleSet.from_pairs(to_range(z1), to_range(z2))


def random_keyed_relations(
    n_left: int,
    n_right: int,
    n_keys: int,
    *,
    low: float = 0.0,
    high: float = 100.0,
    seed: int = 0,
) -> tuple[Relation, Relation]:
    """Two relations with uniform join keys and uniform rank values.

    Join keys are uniform over ``n_keys`` values, so the expected
    equi-join size is ``n_left * n_right / n_keys`` — the knob the
    baseline ablations use to sweep join selectivity.  Schemas are
    ``(key int64, rank float64)`` on both sides.
    """
    if n_keys < 1:
        raise ConstructionError(f"n_keys must be positive, got {n_keys}")
    rng = np.random.default_rng(seed)
    schema = Schema([("key", "int64"), ("rank", "float64")])
    left = Relation(
        schema,
        {
            "key": rng.integers(0, n_keys, n_left),
            "rank": rng.uniform(low, high, n_left),
        },
    )
    right = Relation(
        schema,
        {
            "key": rng.integers(0, n_keys, n_right),
            "rank": rng.uniform(low, high, n_right),
        },
    )
    return left, right


def pairs_as_relations(pairs: RankTupleSet) -> tuple[Relation, Relation]:
    """Two relations whose equi-join on ``key`` reproduces ``pairs``.

    The left relation carries ``(key, rank)`` with the first rank value,
    the right one the second; each pair gets a private key so the join is
    one-to-one.  Used to exercise the full relational path on synthetic
    data.
    """
    left = Relation(
        Schema([("key", "int64"), ("rank", "float64")]),
        {"key": pairs.tids.copy(), "rank": pairs.s1.copy()},
    )
    right = Relation(
        Schema([("key", "int64"), ("rank", "float64")]),
        {"key": pairs.tids.copy(), "rank": pairs.s2.copy()},
    )
    return left, right
