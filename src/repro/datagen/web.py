"""Synthetic substitutes for the paper's real datasets (Section 8.1).

The paper's *real_web* dataset joins per-page in-degree and out-degree
tables crawled from the web (370,000 join tuples); *real_xml* joins
document size and out-degree of XML documents (160,000 join tuples).
The original crawls are unavailable, so these generators synthesize
columns from heavy-tailed families (discrete power law for in-degree,
log-normal for out-degree and size) whose parameters were fitted to the
published marginal statistics of Table 1 (min, max, mean, median,
standard deviation, skew).  The behaviours the evaluation depends on —
a heavy-tailed, weakly correlated joint rank distribution producing a
thin dominating band — are preserved; Table 1's experiment prints the
achieved statistics next to the published ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.tuples import RankTupleSet
from ..relalg.relation import Relation
from ..relalg.schema import Schema

__all__ = [
    "ColumnStats",
    "column_stats",
    "real_web_pairs",
    "real_xml_pairs",
    "real_web_relations",
    "real_xml_relations",
    "PAPER_TABLE1",
]

# Default sizes follow the paper; experiments downscale via arguments.
REAL_WEB_SIZE = 370_000
REAL_XML_SIZE = 160_000


@dataclass(frozen=True)
class ColumnStats:
    """The six statistics reported per column in Table 1."""

    minimum: float
    maximum: float
    mean: float
    median: float
    std: float
    skew: float

    def as_row(self) -> tuple:
        return (
            self.minimum,
            self.maximum,
            round(self.mean, 2),
            self.median,
            round(self.std, 2),
            round(self.skew, 2),
        )


#: Published Table 1 values, keyed by column name.
PAPER_TABLE1: dict[str, ColumnStats] = {
    "real_web_indegree": ColumnStats(1, 100288, 6.17, 1, 152.70, 520.47),
    "real_web_outdegree": ColumnStats(1, 826, 7.02, 3, 14.92, 10.48),
    "real_xml_size": ColumnStats(10, 500608, 4641.09, 1071, 20814.03, 12.49),
    "real_xml_outdegree": ColumnStats(1, 5520, 13.18, 4, 46.62, 29.89),
}


def column_stats(values: np.ndarray) -> ColumnStats:
    """Compute the Table 1 statistics of one column."""
    values = np.asarray(values, dtype=np.float64)
    mean = float(values.mean())
    std = float(values.std(ddof=1)) if len(values) > 1 else 0.0
    if std > 0.0:
        skew = float(((values - mean) ** 3).mean() / std**3)
    else:
        skew = 0.0
    return ColumnStats(
        minimum=float(values.min()),
        maximum=float(values.max()),
        mean=mean,
        median=float(np.median(values)),
        std=std,
        skew=skew,
    )


def _discrete_power_law(
    rng: np.random.Generator, n: int, alpha: float, x_max: int
) -> np.ndarray:
    """Samples from ``P(X = x) ~ x**-alpha`` on ``{1, .., x_max}``.

    Inverse-CDF sampling on the continuous Pareto then discretized,
    which keeps memory flat for very large ``x_max``.
    """
    u = rng.uniform(size=n)
    # Continuous truncated Pareto on [1, x_max + 1).
    beta = 1.0 - alpha
    lo, hi = 1.0, float(x_max + 1)
    raw = (u * (hi**beta - lo**beta) + lo**beta) ** (1.0 / beta)
    return np.minimum(np.floor(raw), x_max).astype(np.int64)


def _discrete_lognormal(
    rng: np.random.Generator,
    n: int,
    median: float,
    sigma: float,
    lo: int,
    hi: int,
) -> np.ndarray:
    """Ceiling of a log-normal with the given median, clipped to [lo, hi]."""
    raw = rng.lognormal(mean=np.log(median), sigma=sigma, size=n)
    return np.clip(np.ceil(raw), lo, hi).astype(np.int64)


def _web_columns(
    n: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    # In-degree: power law with alpha ~ 2.05 reproduces median 1 and a
    # mean of a few, with the extreme skew of Table 1 coming from the
    # 1e5-deep tail.
    indegree = _discrete_power_law(rng, n, alpha=2.18, x_max=100_288)
    # Out-degree: log-normal around median 3 with a modest tail to 826.
    outdegree = _discrete_lognormal(rng, n, median=2.55, sigma=1.25, lo=1, hi=826)
    return indegree, outdegree


def _xml_columns(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    size = _discrete_lognormal(
        rng, n, median=1071.0, sigma=1.71, lo=10, hi=500_608
    )
    outdegree = _discrete_lognormal(rng, n, median=3.3, sigma=1.55, lo=1, hi=5520)
    return size, outdegree


def real_web_pairs(n: int = REAL_WEB_SIZE, *, seed: int = 0) -> RankTupleSet:
    """Rank pairs of the *real_web* join: (in-degree, out-degree) per page.

    A hair of uniform jitter keeps tied integer degrees distinct as
    points, mirroring the fractional statistics real crawls carry.
    """
    indegree, outdegree = _web_columns(n, seed)
    rng = np.random.default_rng(seed + 1)
    return RankTupleSet.from_pairs(
        indegree + rng.uniform(0.0, 1e-3, n),
        outdegree + rng.uniform(0.0, 1e-3, n),
    )


def real_xml_pairs(n: int = REAL_XML_SIZE, *, seed: int = 0) -> RankTupleSet:
    """Rank pairs of the *real_xml* join: (size, out-degree) per document."""
    size, outdegree = _xml_columns(n, seed)
    rng = np.random.default_rng(seed + 1)
    return RankTupleSet.from_pairs(
        size + rng.uniform(0.0, 1e-3, n),
        outdegree + rng.uniform(0.0, 1e-3, n),
    )


def real_web_relations(
    n: int = REAL_WEB_SIZE, *, seed: int = 0
) -> tuple[Relation, Relation]:
    """The two base tables of *real_web*, joined on ``page_id``."""
    indegree, outdegree = _web_columns(n, seed)
    page_ids = np.arange(n, dtype=np.int64)
    left = Relation(
        Schema([("page_id", "int64"), ("indegree", "int64")]),
        {"page_id": page_ids, "indegree": indegree},
    )
    right = Relation(
        Schema([("page_id", "int64"), ("outdegree", "int64")]),
        {"page_id": page_ids.copy(), "outdegree": outdegree},
    )
    return left, right


def real_xml_relations(
    n: int = REAL_XML_SIZE, *, seed: int = 0
) -> tuple[Relation, Relation]:
    """The two base tables of *real_xml*, joined on ``doc_id``."""
    size, outdegree = _xml_columns(n, seed)
    doc_ids = np.arange(n, dtype=np.int64)
    left = Relation(
        Schema([("doc_id", "int64"), ("size", "int64")]),
        {"doc_id": doc_ids, "size": size},
    )
    right = Relation(
        Schema([("doc_id", "int64"), ("outdegree", "int64")]),
        {"doc_id": doc_ids.copy(), "outdegree": outdegree},
    )
    return left, right
