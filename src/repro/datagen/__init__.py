"""Data and workload generators for the paper's evaluation datasets."""

from .synthetic import (
    correlated_pairs,
    gaussian_pairs,
    pairs_as_relations,
    random_keyed_relations,
    uniform_pairs,
    zipf_pairs,
)
from .web import (
    PAPER_TABLE1,
    ColumnStats,
    column_stats,
    real_web_pairs,
    real_web_relations,
    real_xml_pairs,
    real_xml_relations,
)
# From the implementation's real home, not the deprecated
# ``.workloads`` shim, so ``import repro.datagen`` stays warning-free.
from ..core.workloads import grid_preferences, random_preferences

__all__ = [
    "PAPER_TABLE1",
    "ColumnStats",
    "column_stats",
    "correlated_pairs",
    "gaussian_pairs",
    "grid_preferences",
    "pairs_as_relations",
    "random_keyed_relations",
    "random_preferences",
    "real_web_pairs",
    "real_web_relations",
    "real_xml_pairs",
    "real_xml_relations",
    "uniform_pairs",
    "zipf_pairs",
]
