"""Query workloads — re-exported from :mod:`repro.core.workloads`.

The implementation moved into ``core`` so that core's self-verification
(:mod:`repro.core.verify`) and the physical-design advisor can sample
preference workloads without reaching up the layer stack.  This module
keeps the historical ``repro.datagen.workloads`` import path alive.
"""

from __future__ import annotations

import warnings

from ..core.workloads import grid_preferences, random_preferences

__all__ = ["random_preferences", "grid_preferences"]

warnings.warn(
    "repro.datagen.workloads is deprecated; import preference workloads "
    "from repro.core.workloads (see docs/API.md, deprecation policy)",
    DeprecationWarning,
    stacklevel=2,
)
