"""R-tree substrate and the paper's TopKrtree baseline (Section 7)."""

from .disk import DiskRTree, DiskRTreeQueryStats, max_entries_for_page
from .node import ChildEntry, LeafEntry, RNode
from .rect import Rect
from .rtree import RTree
from .split import linear_split, quadratic_split, rstar_split
from .topk import RTreeSearchStats, topk_best_first, topk_paper

__all__ = [
    "ChildEntry",
    "DiskRTree",
    "DiskRTreeQueryStats",
    "LeafEntry",
    "RNode",
    "RTree",
    "RTreeSearchStats",
    "Rect",
    "linear_split",
    "max_entries_for_page",
    "quadratic_split",
    "rstar_split",
    "topk_best_first",
    "topk_paper",
]
