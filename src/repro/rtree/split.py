"""Node-split strategies: Guttman's quadratic and linear splits, and the
R*-tree topological split.

Each strategy takes the overflowing entry list (as parallel rectangles)
and returns two index groups, each holding at least ``min_entries``
members.  The strategies are pure functions over rectangles so they are
shared by leaf and internal splits and are directly unit-testable.
"""

from __future__ import annotations

from .rect import Rect

__all__ = ["quadratic_split", "linear_split", "rstar_split"]


def _seeds_quadratic(rects: list[Rect]) -> tuple[int, int]:
    """Pair wasting the most area if grouped together (Guttman PickSeeds)."""
    worst = -1.0
    seeds = (0, 1)
    for i in range(len(rects)):
        for j in range(i + 1, len(rects)):
            waste = (
                rects[i].union(rects[j]).area()
                - rects[i].area()
                - rects[j].area()
            )
            if waste > worst:
                worst = waste
                seeds = (i, j)
    return seeds


def quadratic_split(
    rects: list[Rect], min_entries: int
) -> tuple[list[int], list[int]]:
    """Guttman's quadratic split: seed with the worst pair, then assign each
    remaining entry to the group whose MBR it enlarges least, forcing
    assignment when a group must absorb all leftovers to reach the
    minimum fill."""
    seed_a, seed_b = _seeds_quadratic(rects)
    group_a = [seed_a]
    group_b = [seed_b]
    mbr_a = rects[seed_a]
    mbr_b = rects[seed_b]
    remaining = [i for i in range(len(rects)) if i not in (seed_a, seed_b)]

    while remaining:
        if len(group_a) + len(remaining) == min_entries:
            group_a.extend(remaining)
            break
        if len(group_b) + len(remaining) == min_entries:
            group_b.extend(remaining)
            break
        # PickNext: entry with the strongest preference for one group.
        best_index = -1
        best_diff = -1.0
        best_enlargements = (0.0, 0.0)
        for position, i in enumerate(remaining):
            grow_a = mbr_a.enlargement(rects[i])
            grow_b = mbr_b.enlargement(rects[i])
            diff = abs(grow_a - grow_b)
            if diff > best_diff:
                best_diff = diff
                best_index = position
                best_enlargements = (grow_a, grow_b)
        i = remaining.pop(best_index)
        grow_a, grow_b = best_enlargements
        if grow_a < grow_b or (
            grow_a == grow_b and mbr_a.area() <= mbr_b.area()
        ):
            group_a.append(i)
            mbr_a = mbr_a.union(rects[i])
        else:
            group_b.append(i)
            mbr_b = mbr_b.union(rects[i])
    return group_a, group_b


def linear_split(
    rects: list[Rect], min_entries: int
) -> tuple[list[int], list[int]]:
    """Guttman's linear split: seeds by the greatest normalized separation."""
    def best_separation(low_side, high_side, span_lo, span_hi):
        highest_low = max(range(len(rects)), key=lambda i: low_side(rects[i]))
        lowest_high = min(range(len(rects)), key=lambda i: high_side(rects[i]))
        span = max(span_hi(r) for r in rects) - min(span_lo(r) for r in rects)
        if span <= 0.0:
            return 0.0, highest_low, lowest_high
        separation = (
            low_side(rects[highest_low]) - high_side(rects[lowest_high])
        ) / span
        return separation, highest_low, lowest_high

    sep_x, ax, bx = best_separation(
        lambda r: r.xmin, lambda r: r.xmax, lambda r: r.xmin, lambda r: r.xmax
    )
    sep_y, ay, by = best_separation(
        lambda r: r.ymin, lambda r: r.ymax, lambda r: r.ymin, lambda r: r.ymax
    )
    seed_a, seed_b = (ax, bx) if sep_x >= sep_y else (ay, by)
    if seed_a == seed_b:
        seed_b = (seed_a + 1) % len(rects)

    group_a = [seed_a]
    group_b = [seed_b]
    mbr_a = rects[seed_a]
    mbr_b = rects[seed_b]
    remaining = [i for i in range(len(rects)) if i not in (seed_a, seed_b)]
    for position, i in enumerate(remaining):
        left_after = len(remaining) - position
        if len(group_a) + left_after == min_entries:
            group_a.extend(remaining[position:])
            return group_a, group_b
        if len(group_b) + left_after == min_entries:
            group_b.extend(remaining[position:])
            return group_a, group_b
        if mbr_a.enlargement(rects[i]) <= mbr_b.enlargement(rects[i]):
            group_a.append(i)
            mbr_a = mbr_a.union(rects[i])
        else:
            group_b.append(i)
            mbr_b = mbr_b.union(rects[i])
    return group_a, group_b


def rstar_split(
    rects: list[Rect], min_entries: int
) -> tuple[list[int], list[int]]:
    """The R*-tree split: pick the axis minimizing total margin over all
    candidate distributions, then the distribution minimizing overlap
    (area as the tie-breaker)."""
    n = len(rects)
    best = None  # (overlap, area, order, cut)
    for axis_keys in (
        lambda r: (r.xmin, r.xmax),
        lambda r: (r.ymin, r.ymax),
    ):
        order = sorted(range(n), key=lambda i: axis_keys(rects[i]))
        margin_sum = 0.0
        candidates = []
        for cut in range(min_entries, n - min_entries + 1):
            left = Rect.union_of(rects[i] for i in order[:cut])
            right = Rect.union_of(rects[i] for i in order[cut:])
            margin_sum += left.margin() + right.margin()
            candidates.append(
                (left.overlap_area(right), left.area() + right.area(), cut)
            )
        axis_best = min(candidates)
        key = (margin_sum, axis_best)
        if best is None or key < best[0]:
            best = (key, order, axis_best[2])
    _, order, cut = best
    return order[:cut], order[cut:]
