"""Axis-aligned rectangles (MBRs) for the R-tree substrate.

The top-k search of Section 7 relies on one property of minimum bounding
rectangles under monotone scoring functions: the scores of all points
inside an MBR are bounded by the scores of its lower-left and upper-right
corners (:meth:`Rect.min_projection` / :meth:`Rect.max_projection`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Rect"]


@dataclass(frozen=True, slots=True)
class Rect:
    """A closed axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(f"degenerate rectangle: {self}")

    @classmethod
    def point(cls, x: float, y: float) -> "Rect":
        return cls(x, y, x, y)

    @classmethod
    def union_of(cls, rects) -> "Rect":
        """Smallest rectangle enclosing every rectangle of the iterable."""
        rects = list(rects)
        if not rects:
            raise ValueError("union of no rectangles")
        return cls(
            min(r.xmin for r in rects),
            min(r.ymin for r in rects),
            max(r.xmax for r in rects),
            max(r.ymax for r in rects),
        )

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def area(self) -> float:
        return (self.xmax - self.xmin) * (self.ymax - self.ymin)

    def margin(self) -> float:
        """Half-perimeter, the R*-tree split criterion."""
        return (self.xmax - self.xmin) + (self.ymax - self.ymin)

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed to also cover ``other`` (Guttman's ChooseLeaf)."""
        return self.union(other).area() - self.area()

    def intersects(self, other: "Rect") -> bool:
        return not (
            other.xmin > self.xmax
            or other.xmax < self.xmin
            or other.ymin > self.ymax
            or other.ymax < self.ymin
        )

    def overlap_area(self, other: "Rect") -> float:
        width = min(self.xmax, other.xmax) - max(self.xmin, other.xmin)
        height = min(self.ymax, other.ymax) - max(self.ymin, other.ymin)
        if width <= 0.0 or height <= 0.0:
            return 0.0
        return width * height

    def contains(self, other: "Rect") -> bool:
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and self.xmax >= other.xmax
            and self.ymax >= other.ymax
        )

    def contains_point(self, x: float, y: float) -> bool:
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax

    # -- score bounds under monotone linear functions (Section 7) ----------

    def max_projection(self, p1: float, p2: float) -> float:
        """Largest possible score of any point inside (upper-right corner)."""
        return p1 * self.xmax + p2 * self.ymax

    def min_projection(self, p1: float, p2: float) -> float:
        """Smallest possible score of any point inside (lower-left corner)."""
        return p1 * self.xmin + p2 * self.ymin

    def center(self) -> tuple[float, float]:
        return (self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0
