"""Disk-resident R-tree: page serialization and page-counted search.

One node per page, mirroring how the paper's disk-resident TopKrtree is
measured: total space (Figure 16) is the page count times page size, and
query cost is the number of node pages fetched through the buffer pool.

Page layout (little-endian): header ``level u16, count u16``; leaf
entries ``(x f64, y f64, tid i64)`` of 24 bytes; internal entries
``(xmin, ymin, xmax, ymax f64, child_page i64)`` of 40 bytes.
"""

from __future__ import annotations

import heapq
import itertools
import struct
import tempfile
from dataclasses import dataclass
from pathlib import Path

from ..core.index import QueryResult
from ..core.scoring import Preference
from ..errors import QueryError, StorageError
from ..storage.buffer import BufferPool
from ..storage.pager import Pager
from ..storage.pages import DEFAULT_PAGE_SIZE, Page
from .node import RNode
from .rtree import RTree

__all__ = ["DiskRTree", "DiskRTreeQueryStats", "max_entries_for_page"]

_HEADER = 8
_LEAF_ENTRY = 24
_INTERNAL_ENTRY = 40
_FILE_MAGIC = b"RTREDSK1"
_FILE_HEADER = struct.Struct("<8sqHq")  # magic, root page, height, n_points


def max_entries_for_page(page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """The largest fanout for which both node kinds fit in one page."""
    fanout = (page_size - _HEADER) // _INTERNAL_ENTRY
    if fanout < 4:
        raise StorageError(f"page size {page_size} too small for an R-tree node")
    return fanout


@dataclass
class DiskRTreeQueryStats:
    """Per-query counters of the disk search."""

    pages_read: int = 0
    nodes_visited: int = 0
    points_scored: int = 0


class DiskRTree:
    """An R-tree serialized onto pages, searched through a buffer pool."""

    def __init__(
        self,
        tree: RTree,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_capacity: int = 16,
    ):
        capacity = max_entries_for_page(page_size)
        if tree.max_entries > capacity:
            raise StorageError(
                f"tree fanout {tree.max_entries} exceeds page capacity {capacity}"
            )
        self.pager = Pager(page_size)
        self.pool = BufferPool(self.pager, capacity=buffer_capacity)
        self.n_points = len(tree)
        self.height = tree.height
        self.root_page_id = self._write_node(tree.root)
        self.last_query = DiskRTreeQueryStats()

    def _write_node(self, node: RNode) -> int:
        """Serialize a subtree bottom-up; returns the node's page id."""
        page = Page(self.pager.page_size)
        page.write_u16(0, node.level)
        page.write_u16(2, len(node.entries))
        offset = _HEADER
        if node.is_leaf:
            for entry in node.entries:
                page.write_f64(offset, entry.x)
                page.write_f64(offset + 8, entry.y)
                page.write_i64(offset + 16, entry.tid)
                offset += _LEAF_ENTRY
        else:
            for entry in node.entries:
                child_page = self._write_node(entry.child)
                page.write_f64(offset, entry.rect.xmin)
                page.write_f64(offset + 8, entry.rect.ymin)
                page.write_f64(offset + 16, entry.rect.xmax)
                page.write_f64(offset + 24, entry.rect.ymax)
                page.write_i64(offset + 32, child_page)
                offset += _INTERNAL_ENTRY
        page_id = self.pager.allocate()
        self.pager.write(page_id, page)
        return page_id

    # -- persistence --------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the serialized tree: a header plus the page file."""
        path = Path(path)
        with path.open("wb") as handle:
            handle.write(
                _FILE_HEADER.pack(
                    _FILE_MAGIC, self.root_page_id, self.height, self.n_points
                )
            )
            with tempfile.NamedTemporaryFile() as spool:
                self.pager.save(spool.name)
                handle.write(Path(spool.name).read_bytes())

    @classmethod
    def open(
        cls, path: str | Path, *, buffer_capacity: int = 16
    ) -> "DiskRTree":
        """Reopen a tree previously written with :meth:`save`."""
        path = Path(path)
        raw = path.read_bytes()
        if raw[: len(_FILE_MAGIC)] != _FILE_MAGIC:
            raise StorageError(f"{path} is not a disk R-tree file")
        magic, root, height, n_points = _FILE_HEADER.unpack(
            raw[: _FILE_HEADER.size]
        )
        with tempfile.NamedTemporaryFile() as spool:
            Path(spool.name).write_bytes(raw[_FILE_HEADER.size :])
            pager = Pager.load(spool.name)
        instance = cls.__new__(cls)
        instance.pager = pager
        instance.pool = BufferPool(pager, capacity=buffer_capacity)
        instance.n_points = n_points
        instance.height = height
        instance.root_page_id = root
        instance.last_query = DiskRTreeQueryStats()
        pager.counters.reset()
        return instance

    # -- accounting -------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """Total space of all node pages (Figure 16's metric)."""
        return self.pager.total_bytes

    @property
    def n_pages(self) -> int:
        return self.pager.n_pages

    def reset_io(self) -> None:
        self.pager.counters.reset()
        self.pool.clear()
        self.pool.reset_counters()

    # -- search -----------------------------------------------------------

    def _read_node(self, page_id: int, stats: DiskRTreeQueryStats):
        reads_before = self.pager.counters.reads
        page = self.pool.get(page_id)
        stats.pages_read += self.pager.counters.reads - reads_before
        stats.nodes_visited += 1
        level = page.read_u16(0)
        count = page.read_u16(2)
        entries = []
        offset = _HEADER
        if level == 0:
            for _ in range(count):
                entries.append(
                    (
                        page.read_f64(offset),
                        page.read_f64(offset + 8),
                        page.read_i64(offset + 16),
                    )
                )
                offset += _LEAF_ENTRY
        else:
            for _ in range(count):
                entries.append(
                    (
                        page.read_f64(offset),
                        page.read_f64(offset + 8),
                        page.read_f64(offset + 16),
                        page.read_f64(offset + 24),
                        page.read_i64(offset + 32),
                    )
                )
                offset += _INTERNAL_ENTRY
        return level, entries

    # The R-tree is bound-free: best-first search serves any k.
    def query(self, preference: Preference, k: int) -> list[QueryResult]:  # rjilint: disable=RJI007
        """Best-first top-k over the serialized tree (page-counted)."""
        if k < 1:
            raise QueryError(f"k must be positive, got {k}")
        if self.n_points == 0:
            raise QueryError("cannot query an empty R-tree")
        p1, p2 = preference.p1, preference.p2
        stats = DiskRTreeQueryStats()
        results: list[QueryResult] = []
        tiebreak = itertools.count()
        queue: list[tuple[float, int, object]] = [
            (0.0, next(tiebreak), self.root_page_id)
        ]
        while queue and len(results) < k:
            _, _, item = heapq.heappop(queue)
            if isinstance(item, int):
                level, entries = self._read_node(item, stats)
                if level == 0:
                    for x, y, tid in entries:
                        stats.points_scored += 1
                        score = p1 * x + p2 * y
                        heapq.heappush(
                            queue, (-score, next(tiebreak), (tid, score))
                        )
                else:
                    for xmin, ymin, xmax, ymax, child in entries:
                        bound = p1 * xmax + p2 * ymax
                        heapq.heappush(queue, (-bound, next(tiebreak), child))
            else:
                tid, score = item
                results.append(QueryResult(tid, score))
        self.last_query = stats
        return results
