"""R-tree node structures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from .rect import Rect

__all__ = ["LeafEntry", "ChildEntry", "RNode"]


@dataclass(frozen=True, slots=True)
class LeafEntry:
    """A data point stored at the leaf level."""

    x: float
    y: float
    tid: int

    @property
    def rect(self) -> Rect:
        return Rect.point(self.x, self.y)


@dataclass(slots=True)
class ChildEntry:
    """A subtree reference with its bounding rectangle."""

    rect: Rect
    child: "RNode"


Entry = Union[LeafEntry, ChildEntry]


@dataclass(slots=True)
class RNode:
    """An R-tree node: ``level == 0`` for leaves, parents one higher."""

    level: int
    entries: list[Entry] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def mbr(self) -> Rect:
        """The minimum bounding rectangle of this node's entries."""
        return Rect.union_of(entry.rect for entry in self.entries)

    def __len__(self) -> int:
        return len(self.entries)
