"""TopKrtree — answering top-k join queries with an R-tree (Section 7).

Given the R-tree over the dominating-set points and a preference vector
``e``, the score of every point inside an MBR is bracketed by the
projections of the MBR's lower-left and upper-right corners on ``e``.
:func:`topk_paper` follows Figure 10's *TopKrtreeAnswer*: at each node
the children are ordered by decreasing maximum-projection (the first is
the *master MBR*) and searched depth-first; a child is pruned when its
maximum-projection cannot reach the k-th best score found so far.  The
paper's simplified pseudo-code prunes against the master MBR's
minimum-projection under the stated assumption that every MBR holds at
least K tuples; once the master subtree has been searched, the running
k-th best score is at least that minimum-projection, so the bound used
here is the sound generalization of the same rule for arbitrary fanout
(the "list of candidate MBRs ordered by their maximum projections" the
paper sketches).  As the paper notes (Figure 9(b)) this depth-first
strategy can still visit many useless MBRs — that excess work is
precisely what the RJI comparison of Figure 15 measures.

:func:`topk_best_first` is the classic branch-and-bound refinement (in
the spirit of the nearest-neighbour search of Roussopoulos et al. [15]):
a single priority queue ordered by maximum-projection, popping a point
proves it is the next best answer.  It gives the R-tree its best
possible showing and is used as an upper bound for the baseline.

Both searches also prune against the current k-th best score once k
candidates are held — without it the literal simplified pseudo-code can
degenerate to scanning the entire tree on every query.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from ..core.index import QueryResult
from ..core.scoring import Preference
from ..errors import QueryError
from .node import RNode
from .rtree import RTree

__all__ = ["RTreeSearchStats", "topk_paper", "topk_best_first"]


@dataclass
class RTreeSearchStats:
    """Work counters of one TopKrtree search."""

    nodes_visited: int = 0
    entries_examined: int = 0
    points_scored: int = 0


class _BoundedAnswers:
    """Min-heap of the best k (score, tid) candidates seen so far."""

    def __init__(self, k: int):
        self.k = k
        self._heap: list[tuple[float, int]] = []

    def offer(self, score: float, tid: int) -> None:
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (score, -tid))
        elif (score, -tid) > self._heap[0]:
            heapq.heappushpop(self._heap, (score, -tid))

    def bound(self) -> float:
        """Score every remaining answer must beat; -inf until k are held."""
        if len(self._heap) < self.k:
            return float("-inf")
        return self._heap[0][0]

    def results(self) -> list[QueryResult]:
        ordered = sorted(self._heap, key=lambda item: (-item[0], -item[1]))
        return [QueryResult(-neg_tid, score) for score, neg_tid in ordered]


def _check_query(tree: RTree, k: int) -> None:
    if k < 1:
        raise QueryError(f"k must be positive, got {k}")
    if len(tree) == 0:
        raise QueryError("cannot query an empty R-tree")


def topk_paper(
    tree: RTree, preference: Preference, k: int
) -> tuple[list[QueryResult], RTreeSearchStats]:
    """The TopKrtreeAnswer algorithm of Figure 10 (generalized form).

    Recursively processes nodes; at each internal node the candidate
    children are ordered by decreasing maximum-projection (master MBR
    first) and a child is pruned once its maximum-projection falls below
    the k-th best score currently held — the sound form of the paper's
    master-minimum-projection prune for MBRs of arbitrary occupancy.
    """
    _check_query(tree, k)
    p1, p2 = preference.p1, preference.p2
    answers = _BoundedAnswers(k)
    stats = RTreeSearchStats()

    def process(node: RNode) -> None:
        stats.nodes_visited += 1
        if node.is_leaf:
            for entry in node.entries:
                stats.entries_examined += 1
                stats.points_scored += 1
                answers.offer(p1 * entry.x + p2 * entry.y, entry.tid)
            return
        projections = []
        for entry in node.entries:
            stats.entries_examined += 1
            projections.append(
                (entry.rect.max_projection(p1, p2), entry)
            )
        projections.sort(key=lambda item: -item[0])
        for max_proj, entry in projections:
            if max_proj < answers.bound():
                break  # cannot beat the k answers already held
            process(entry.child)

    process(tree.root)
    return answers.results(), stats


def topk_best_first(
    tree: RTree, preference: Preference, k: int
) -> tuple[list[QueryResult], RTreeSearchStats]:
    """Best-first top-k: one global queue ordered by maximum projection."""
    _check_query(tree, k)
    p1, p2 = preference.p1, preference.p2
    stats = RTreeSearchStats()
    results: list[QueryResult] = []
    tiebreak = itertools.count()
    # Queue items: (-upper_bound, counter, node_or_point)
    queue: list[tuple[float, int, object]] = [
        (-tree.root.mbr().max_projection(p1, p2), next(tiebreak), tree.root)
    ]
    while queue and len(results) < k:
        neg_bound, _, item = heapq.heappop(queue)
        if isinstance(item, RNode):
            stats.nodes_visited += 1
            for entry in item.entries:
                stats.entries_examined += 1
                if item.is_leaf:
                    stats.points_scored += 1
                    score = p1 * entry.x + p2 * entry.y
                    heapq.heappush(
                        queue, (-score, next(tiebreak), (entry.tid, score))
                    )
                else:
                    bound = entry.rect.max_projection(p1, p2)
                    heapq.heappush(
                        queue, (-bound, next(tiebreak), entry.child)
                    )
        else:
            tid, score = item
            results.append(QueryResult(tid, score))
    return results, stats
