"""A from-scratch R-tree over 2-d points.

Supports Guttman-style dynamic insertion [11] with a choice of split
strategy (quadratic, linear, or R*-style [2]) and Sort-Tile-Recursive
bulk loading.  Section 7 of the paper builds this structure over the
dominating-set points and runs the modified top-k search of
:mod:`repro.rtree.topk` on it.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Iterator

from ..errors import ConstructionError
from .node import ChildEntry, LeafEntry, RNode
from .rect import Rect
from .split import linear_split, quadratic_split, rstar_split

__all__ = ["RTree"]

_SPLITS: dict[str, Callable] = {
    "quadratic": quadratic_split,
    "linear": linear_split,
    "rstar": rstar_split,
}


class RTree:
    """An R-tree on points ``(x, y, tid)``.

    ``max_entries`` is the node fanout M; ``min_fill`` the minimum fill
    ratio m/M enforced on splits.  ``split`` picks the overflow strategy.
    """

    def __init__(
        self,
        max_entries: int = 16,
        *,
        min_fill: float = 0.4,
        split: str = "quadratic",
    ):
        if max_entries < 4:
            raise ConstructionError(f"max_entries must be >= 4, got {max_entries}")
        if not 0.0 < min_fill <= 0.5:
            raise ConstructionError(f"min_fill must be in (0, 0.5], got {min_fill}")
        if split not in _SPLITS:
            raise ConstructionError(
                f"unknown split strategy {split!r}; choose from {sorted(_SPLITS)}"
            )
        self.max_entries = max_entries
        self.min_entries = max(1, int(math.floor(max_entries * min_fill)))
        self._split = _SPLITS[split]
        self.split_name = split
        self.root = RNode(level=0)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self.root.level + 1

    # -- dynamic insertion ---------------------------------------------------

    def insert(self, x: float, y: float, tid: int) -> None:
        """Insert one point (Guttman Insert + ChooseLeaf + split cascade)."""
        entry = LeafEntry(float(x), float(y), int(tid))
        split = self._insert_at(self.root, entry)
        if split is not None:
            old_root_entry, new_entry = split
            self.root = RNode(
                level=self.root.level + 1, entries=[old_root_entry, new_entry]
            )
        self._size += 1

    def _insert_at(self, node: RNode, entry: LeafEntry):
        """Recursive insert; returns replacement entries when ``node`` split."""
        if node.is_leaf:
            node.entries.append(entry)
        else:
            child_entry = self._choose_subtree(node, entry.rect)
            split = self._insert_at(child_entry.child, entry)
            if split is None:
                child_entry.rect = child_entry.child.mbr()
            else:
                replaced, sibling = split
                position = next(
                    i
                    for i, e in enumerate(node.entries)
                    if e is child_entry
                )
                node.entries[position] = replaced
                node.entries.append(sibling)
        if len(node.entries) > self.max_entries:
            return self._split_node(node)
        return None

    def _choose_subtree(self, node: RNode, rect: Rect) -> ChildEntry:
        """Least-enlargement child; ties broken by smaller area (Guttman)."""
        return min(
            node.entries,
            key=lambda e: (e.rect.enlargement(rect), e.rect.area()),
        )

    def _split_node(self, node: RNode) -> tuple[ChildEntry, ChildEntry]:
        rects = [entry.rect for entry in node.entries]
        group_a, group_b = self._split(rects, self.min_entries)
        left = RNode(node.level, [node.entries[i] for i in group_a])
        right = RNode(node.level, [node.entries[i] for i in group_b])
        return ChildEntry(left.mbr(), left), ChildEntry(right.mbr(), right)

    # -- bulk loading ----------------------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        points: Iterable[tuple[float, float, int]],
        max_entries: int = 16,
        *,
        fill: float = 1.0,
        split: str = "quadratic",
    ) -> "RTree":
        """Sort-Tile-Recursive bulk load.

        Sorts points by x, tiles them into vertical slices of
        ``ceil(sqrt(n / capacity))`` runs, sorts each slice by y and packs
        leaves at ``fill * max_entries`` entries; upper levels are packed
        the same way over node centers.
        """
        tree = cls(max_entries, split=split)
        leaf_entries = [
            LeafEntry(float(x), float(y), int(tid)) for x, y, tid in points
        ]
        tree._size = len(leaf_entries)
        if not leaf_entries:
            return tree
        capacity = max(2, int(max_entries * fill))

        def pack_level(nodes: list[RNode]) -> list[RNode]:
            n_slices = max(1, math.ceil(math.sqrt(len(nodes) / capacity)))
            per_slice = math.ceil(len(nodes) / n_slices)
            nodes.sort(key=lambda nd: nd.mbr().center()[0])
            parents: list[RNode] = []
            for s in range(0, len(nodes), per_slice):
                chunk = sorted(
                    nodes[s : s + per_slice],
                    key=lambda nd: nd.mbr().center()[1],
                )
                for i in range(0, len(chunk), capacity):
                    children = chunk[i : i + capacity]
                    parents.append(
                        RNode(
                            children[0].level + 1,
                            [ChildEntry(c.mbr(), c) for c in children],
                        )
                    )
            return parents

        # Pack the leaves from raw points.
        n_slices = max(1, math.ceil(math.sqrt(len(leaf_entries) / capacity)))
        per_slice = math.ceil(len(leaf_entries) / n_slices)
        leaf_entries.sort(key=lambda e: e.x)
        leaves: list[RNode] = []
        for s in range(0, len(leaf_entries), per_slice):
            chunk = sorted(leaf_entries[s : s + per_slice], key=lambda e: e.y)
            for i in range(0, len(chunk), capacity):
                leaves.append(RNode(0, list(chunk[i : i + capacity])))
        level = leaves
        while len(level) > 1:
            level = pack_level(level)
        tree.root = level[0]
        return tree

    # -- introspection -----------------------------------------------------------

    def iter_points(self) -> Iterator[LeafEntry]:
        """All stored points, in tree order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if node.is_leaf:
                    yield entry
                else:
                    stack.append(entry.child)

    def count_nodes(self) -> tuple[int, int]:
        """``(internal_nodes, leaf_nodes)`` of the tree."""
        internal = 0
        leaves = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaves += 1
            else:
                internal += 1
                stack.extend(e.child for e in node.entries)
        return internal, leaves

    def check_invariants(self) -> None:
        """Validate structure: MBR containment, levels, fill bounds."""
        def walk(node: RNode, is_root: bool) -> int:
            # Bulk-loaded tails may legitimately sit below the dynamic
            # minimum fill, so only emptiness and overflow are structural
            # violations here; split strategies are unit-tested for fill.
            if not is_root and not node.entries:
                raise ConstructionError("non-root node is empty")
            if len(node.entries) > self.max_entries:
                raise ConstructionError("node overflows max_entries")
            count = 0
            for entry in node.entries:
                if node.is_leaf:
                    if not isinstance(entry, LeafEntry):
                        raise ConstructionError("leaf holds a non-point entry")
                    count += 1
                else:
                    if entry.child.level != node.level - 1:
                        raise ConstructionError("child level mismatch")
                    if not entry.rect.contains(entry.child.mbr()):
                        raise ConstructionError("MBR does not contain child")
                    count += walk(entry.child, False)
            return count

        total = walk(self.root, True)
        if total != self._size:
            raise ConstructionError(
                f"tree holds {total} points but size says {self._size}"
            )
