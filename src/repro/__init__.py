"""repro — a full reproduction of *Ranked Join Indices* (ICDE 2003).

The package implements the paper's Ranked Join Index (RJI) together with
every substrate it depends on: a paged-storage layer with a disk
B+-tree, an R-tree with the paper's TopKrtree top-k search, a mini
relational engine, no-preprocessing baselines, data generators matching
the paper's evaluation datasets, and a benchmark harness regenerating
every table and figure of the evaluation section.

Quickstart::

    from repro import Preference, RankedJoinIndex, RankTupleSet

    tuples = RankTupleSet.from_pairs(s1_values, s2_values)
    index = RankedJoinIndex.build(tuples, k=50)
    top10 = index.query(Preference(0.7, 0.3), k=10)
"""

from .core import (
    LinearScorer,
    Preference,
    QueryResult,
    RankTuple,
    RankTupleSet,
    RankedJoinIndex,
    dominating_set,
    topk_join_candidates,
)
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "LinearScorer",
    "Preference",
    "QueryResult",
    "RankTuple",
    "RankTupleSet",
    "RankedJoinIndex",
    "ReproError",
    "__version__",
    "dominating_set",
    "topk_join_candidates",
]
