"""Join-result reduction without materializing the full join (Lemma 1).

For a fixed bound ``K``, each tuple ``r`` of the outer relation needs to
join with at most the ``K`` matching inner tuples carrying the highest
inner rank values: any further match is dominated at least ``K`` times by
the retained pairs (they share ``r``'s rank value and exceed its inner
rank value).  The candidate set ``C`` therefore has worst-case size
``O(nK)`` instead of ``O(n^2)``, independently of the preference vector.

This module works on bare arrays so it can be reused both by the
relational layer (:mod:`repro.relalg.joins`) and directly by index
construction.  Join tuple identifiers encode the contributing row ids of
both sides via :func:`encode_rid_pair`.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..errors import ConstructionError
from .tuples import RankTupleSet

__all__ = [
    "encode_rid_pair",
    "decode_rid_pair",
    "topk_join_candidates",
    "full_join_pairs",
]

_RID_BITS = 31
_RID_LIMIT = 1 << _RID_BITS


def encode_rid_pair(left_rid: int, right_rid: int) -> int:
    """Pack two row ids into one join-tuple identifier.

    Row ids must fit in 31 bits each so the packed id stays a positive
    signed 64-bit integer.
    """
    if not (0 <= left_rid < _RID_LIMIT and 0 <= right_rid < _RID_LIMIT):
        raise ConstructionError(
            f"row ids must be in [0, 2^{_RID_BITS}), got ({left_rid}, {right_rid})"
        )
    return (left_rid << _RID_BITS) | right_rid


def decode_rid_pair(tid: int) -> tuple[int, int]:
    """Inverse of :func:`encode_rid_pair`."""
    return tid >> _RID_BITS, tid & (_RID_LIMIT - 1)


def _group_positions_by_key(keys: np.ndarray) -> dict:
    groups: dict = defaultdict(list)
    for position, key in enumerate(keys):
        groups[key].append(position)
    return groups


def topk_join_candidates(
    left_keys: np.ndarray,
    left_ranks: np.ndarray,
    right_keys: np.ndarray,
    right_ranks: np.ndarray,
    k: int,
) -> RankTupleSet:
    """Candidate join tuples per Lemma 1: ``K`` best partners per left tuple.

    Performs an equi-join on the key arrays but emits, for every left
    tuple, only the matches whose right rank value is among the ``k``
    largest within the key group (ties broken by right row id so output
    is deterministic).  Returns a :class:`RankTupleSet` whose ``s1`` is
    the left rank and ``s2`` the right rank, with packed rid-pair tids.
    """
    if k < 1:
        raise ConstructionError(f"K must be a positive integer, got {k}")
    left_keys = np.asarray(left_keys)
    right_keys = np.asarray(right_keys)
    left_ranks = np.asarray(left_ranks, dtype=np.float64)
    right_ranks = np.asarray(right_ranks, dtype=np.float64)

    groups = _group_positions_by_key(right_keys)
    # Pre-trim every key group to its k highest-ranked members.
    trimmed: dict = {}
    for key, positions in groups.items():
        pos = np.asarray(positions, dtype=np.int64)
        order = np.lexsort((pos, -right_ranks[pos]))
        trimmed[key] = pos[order[:k]]

    tids: list[int] = []
    s1: list[float] = []
    s2: list[float] = []
    for left_rid, key in enumerate(left_keys):
        partners = trimmed.get(key)
        if partners is None:
            continue
        for right_rid in partners:
            tids.append(encode_rid_pair(left_rid, int(right_rid)))
            s1.append(float(left_ranks[left_rid]))
            s2.append(float(right_ranks[right_rid]))
    if not tids:
        return RankTupleSet.empty()
    return RankTupleSet(np.array(tids), np.array(s1), np.array(s2))


def full_join_pairs(
    left_keys: np.ndarray,
    left_ranks: np.ndarray,
    right_keys: np.ndarray,
    right_ranks: np.ndarray,
) -> RankTupleSet:
    """Fully materialized equi-join rank pairs (test oracle / baselines)."""
    groups = _group_positions_by_key(np.asarray(right_keys))
    left_ranks = np.asarray(left_ranks, dtype=np.float64)
    right_ranks = np.asarray(right_ranks, dtype=np.float64)
    tids: list[int] = []
    s1: list[float] = []
    s2: list[float] = []
    for left_rid, key in enumerate(np.asarray(left_keys)):
        for right_rid in groups.get(key, ()):
            tids.append(encode_rid_pair(left_rid, int(right_rid)))
            s1.append(float(left_ranks[left_rid]))
            s2.append(float(right_ranks[right_rid]))
    if not tids:
        return RankTupleSet.empty()
    return RankTupleSet(np.array(tids), np.array(s1), np.array(s2))
