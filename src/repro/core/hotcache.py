"""Hot-region LRU cache for the query descent.

QueryRJI (Section 7) spends ``O(log l)`` on the binary-search descent
before touching any tuple.  Real preference workloads are heavily
skewed — a handful of weight ratios (e.g. "availability twice as
important as quality") account for most traffic — so the descent
repeatedly re-derives the same region for the same angle.
:class:`HotRegionCache` memoizes ``preference angle -> value`` with LRU
eviction, letting repeated preferences skip the descent entirely (the
``rji.descent_steps`` observation is 0 on a hit).

Keys are *exact* float angles: two preferences share an entry only when
their normalized angles are bit-equal, so a hit can never change an
answer — the cached value is precisely what the descent would have
produced.  The cache is invalidated wholesale on any region change
(maintenance calls :meth:`clear` via ``_rebuild_lookup``).

Thread-safe: a single lock guards the ordered map, so the serving
wrappers can share one cache across worker threads.  Counters are
plain ints read without the lock (torn reads are acceptable for
monitoring); they feed the ``rji.cache.hits`` / ``rji.cache.misses`` /
``rji.cache.evictions`` metrics (see ``repro/obs/names.py``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from ..errors import ConstructionError

__all__ = ["MISS", "HotRegionCache"]

#: Sentinel returned by :meth:`HotRegionCache.get` on a miss.  A
#: dedicated object, not ``None``: cached values may legitimately be
#: falsy (region id 0 is the first region).
MISS: Any = object()


class HotRegionCache:
    """A bounded LRU map from preference angle to a cached query value."""

    __slots__ = ("capacity", "hits", "misses", "evictions", "_lock", "_map")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConstructionError(
                f"cache capacity must be a positive integer, got {capacity}"
            )
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._map: OrderedDict[float, Any] = OrderedDict()

    def get(self, key: float) -> Any:
        """The cached value for ``key``, or :data:`MISS`.

        A hit refreshes the entry's recency.
        """
        with self._lock:
            try:
                value = self._map[key]
            except KeyError:
                self.misses += 1
                return MISS
            self._map.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: float, value: Any) -> bool:
        """Insert (or refresh) an entry; returns True if one was evicted."""
        with self._lock:
            self._map[key] = value
            self._map.move_to_end(key)
            if len(self._map) > self.capacity:
                self._map.popitem(last=False)
                self.evictions += 1
                return True
            return False

    def clear(self) -> None:
        """Drop every entry (region boundaries changed); keeps counters."""
        with self._lock:
            self._map.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._map)

    @property
    def hit_rate(self) -> float:
        """Lifetime hit fraction (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> dict:
        """Monitoring view: capacity, size and lifetime counters.

        The serving tier inlines this into the ``stats`` wire op when
        the served index exposes the cache, so a live ``repro.obs top``
        view can show the hit rate next to the latency percentiles.
        """
        return {
            "capacity": self.capacity,
            "size": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HotRegionCache(capacity={self.capacity}, size={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
