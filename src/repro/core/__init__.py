"""Core of the reproduction: the Ranked Join Index and its algorithms.

Public surface:

* :class:`~repro.core.index.RankedJoinIndex` — build / query the index;
* :class:`~repro.core.scoring.Preference` — monotone linear scoring;
* :class:`~repro.core.tuples.RankTupleSet` — join-result tuple container;
* :func:`~repro.core.dominance.dominating_set` — Section 4 pruning;
* :func:`~repro.core.pruning.topk_join_candidates` — Lemma 1 pruning;
* :func:`~repro.core.sweep.sweep_regions` — the ConstructRJI sweep.
"""

from .concurrent import ConcurrentRankedJoinIndex, ReadWriteLock
from .deadline import Deadline
from .delta import DeltaStore, SupportsWal
from .dominance import dominating_set, dominating_set_naive
from .index import BuildStats, QueryResult, RankedJoinIndex
from .inspect import describe_index, region_churn
from .maintenance import delete_tuple, insert_tuple
from .managed import MaintenanceLog, ManagedRankedJoinIndex
from .merging import merge_adaptive, merge_every
from .robust import robust_topk_candidates
from .verify import VerificationReport, verify_index
from .multidim import (
    LayeredTopKIndex,
    NDTupleSet,
    nd_dominating_set,
    topk_multiway_join_candidates,
)
# Imported from its real home, not the deprecated ``.single`` shim, so
# ``import repro.core`` stays warning-free.  Safe from circularity:
# ``repro/__init__`` always loads ``.core`` before ``.relalg``.
from ..relalg.topk import TopKSelectionIndex  # rjilint: disable=RJI001
from .pruning import (
    decode_rid_pair,
    encode_rid_pair,
    full_join_pairs,
    topk_join_candidates,
)
from .scoring import LinearScorer, Preference
from .sweep import Region, SweepStats, sweep_regions
from .tuples import RankTuple, RankTupleSet

__all__ = [
    "BuildStats",
    "ConcurrentRankedJoinIndex",
    "Deadline",
    "DeltaStore",
    "SupportsWal",
    "LayeredTopKIndex",
    "LinearScorer",
    "MaintenanceLog",
    "ManagedRankedJoinIndex",
    "NDTupleSet",
    "Preference",
    "QueryResult",
    "RankTuple",
    "RankTupleSet",
    "RankedJoinIndex",
    "ReadWriteLock",
    "Region",
    "SweepStats",
    "TopKSelectionIndex",
    "VerificationReport",
    "decode_rid_pair",
    "delete_tuple",
    "describe_index",
    "region_churn",
    "dominating_set",
    "dominating_set_naive",
    "encode_rid_pair",
    "full_join_pairs",
    "insert_tuple",
    "merge_adaptive",
    "merge_every",
    "nd_dominating_set",
    "robust_topk_candidates",
    "sweep_regions",
    "topk_join_candidates",
    "verify_index",
    "topk_multiway_join_candidates",
]
