"""The angular sweep of Algorithm ConstructRJI (Section 6, Figure 6).

A vector ``e`` sweeps the positive quadrant from the s1-axis (angle 0)
to the s2-axis (angle pi/2).  The sweep tracks the composition of the
running top-K set ``Q``; every separating vector whose crossing changes
``Q`` is *materialized* together with the new composition, partitioning
the quadrant into angular regions ``R_0 .. R_l`` such that any scoring
function whose angle falls inside region ``R_i`` draws its top-k answer
(k <= K) from the region's K tuples.

Exactness under ties
--------------------
Processing same-angle events pairwise in arbitrary order is not sound
when three or more tuples are co-linear (they share one separating
vector, Lemma 5) or when unrelated crossings coincide.  The sweep
therefore *groups* events at equal angles and resolves each group in one
step: the only tuples whose membership can change at the group angle are
the endpoints of group events with exactly one endpoint currently in
``Q`` (an entrant must swap with the tuple holding position K, which is
a member — Lemma 4(b)(iii)).  The new composition is the exact top-K of
``Q`` united with those endpoints, ranked at the angular midpoint of the
following region, which is interior to it and hence tie-free for
distinct rank pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConstructionError
from ..obs import NULL_RECORDER, Recorder
from .events import separating_events
from .geometry import HALF_PI
from .tuples import RankTupleSet

__all__ = ["Region", "SweepStats", "sweep_regions"]


@dataclass(frozen=True)
class Region:
    """One angular region of the index.

    Covers sweep angles in ``[lo, hi)`` (the final region includes
    ``pi/2``).  ``tids`` is the top-K composition; for an order-recording
    sweep it is additionally sorted by decreasing score throughout the
    region's interior.
    """

    lo: float
    hi: float
    tids: tuple[int, ...]

    def width(self) -> float:
        return self.hi - self.lo


@dataclass(frozen=True)
class SweepStats:
    """Work counters of one sweep, for construction-cost reporting."""

    n_input: int
    pairs_considered: int
    n_events: int
    n_groups_resolved: int
    n_regions: int

    @property
    def n_separating(self) -> int:
        """Number of materialized separating points (the paper's |Sep|)."""
        return max(self.n_regions - 1, 0)


def _initial_topk_positions(tuples: RankTupleSet, k: int) -> list[int]:
    """Positions of the top-k at angle 0+ (s1 desc, then s2 desc, tid asc)."""
    order = np.lexsort((tuples.tids, -tuples.s2, -tuples.s1))
    return [int(p) for p in order[:k]]


def _topk_positions_at(
    tuples: RankTupleSet, candidates: list[int], angle: float, k: int
) -> list[int]:
    """Exact top-k among candidate positions, scored at ``angle``."""
    cand = np.asarray(candidates, dtype=np.int64)
    p1 = math.cos(angle)
    p2 = math.sin(angle)
    scores = p1 * tuples.s1[cand] + p2 * tuples.s2[cand]
    order = np.lexsort((tuples.tids[cand], -tuples.s1[cand], -scores))
    return [int(cand[p]) for p in order[:k]]


def sweep_regions(
    tuples: RankTupleSet,
    k: int,
    *,
    record_order: bool = False,
    angle_tol: float = 1e-12,
    recorder: Recorder = NULL_RECORDER,
) -> tuple[list[Region], SweepStats]:
    """Run the ConstructRJI sweep over ``tuples`` for bound ``k``.

    ``tuples`` is normally the dominating set ``D_K``; the sweep is
    correct for any tuple set.  With ``record_order=True`` every change
    of *ordering* inside the top-K is materialized as well (the
    fast-query variant of Section 6.2), producing regions whose ``tids``
    are score-ordered so queries need no re-evaluation.

    Returns the region list (covering ``[0, pi/2]`` without gaps) and
    the sweep's work counters.
    """
    if k < 1:
        raise ConstructionError(f"K must be a positive integer, got {k}")
    n = len(tuples)
    if n == 0:
        return [Region(0.0, HALF_PI, ())], SweepStats(0, 0, 0, 0, 1)

    k_eff = min(k, n)
    queue = _initial_topk_positions(tuples, k_eff)
    queue_set = set(queue)

    events = separating_events(tuples, recorder=recorder)
    angles = events.angles
    first = events.first
    second = events.second
    n_events = len(events)

    regions: list[Region] = []
    tids = tuples.tids
    lo = 0.0
    groups_resolved = 0

    i = 0
    while i < n_events:
        group_angle = float(angles[i])
        if group_angle >= HALF_PI:
            # Rounding artefact of an extreme separating ratio: the swap
            # happens at the sweep's end and affects no interior interval.
            break
        involved: set[int] = set()
        j = i
        while j < n_events and angles[j] - group_angle <= angle_tol:
            a = int(first[j])
            b = int(second[j])
            a_in = a in queue_set
            b_in = b in queue_set
            relevant = (a_in or b_in) if record_order else (a_in != b_in)
            if relevant:
                involved.add(a)
                involved.add(b)
            j += 1
        if involved:
            groups_resolved += 1
            next_angle = float(angles[j]) if j < n_events else HALF_PI
            midpoint = (group_angle + next_angle) / 2.0
            candidates = list(queue_set | involved)
            new_queue = _topk_positions_at(tuples, candidates, midpoint, k_eff)
            changed = (
                new_queue != queue
                if record_order
                else set(new_queue) != queue_set
            )
            if changed:
                if group_angle > lo:
                    regions.append(
                        Region(
                            lo,
                            group_angle,
                            tuple(int(tids[p]) for p in queue),
                        )
                    )
                    lo = group_angle
                # When the group angle rounds onto the previous boundary
                # the displaced composition covered an empty interval and
                # is simply replaced.
                queue = new_queue
                queue_set = set(new_queue)
        i = j

    regions.append(Region(lo, HALF_PI, tuple(int(tids[p]) for p in queue)))
    if recorder.enabled:
        recorder.count("sweep.tie_groups", groups_resolved)
        recorder.count("sweep.regions", len(regions))
    stats = SweepStats(
        n_input=n,
        pairs_considered=events.pairs_considered,
        n_events=n_events,
        n_groups_resolved=groups_resolved,
        n_regions=len(regions),
    )
    return regions, stats
