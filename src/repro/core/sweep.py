"""The angular sweep of Algorithm ConstructRJI (Section 6, Figure 6).

A vector ``e`` sweeps the positive quadrant from the s1-axis (angle 0)
to the s2-axis (angle pi/2).  The sweep tracks the composition of the
running top-K set ``Q``; every separating vector whose crossing changes
``Q`` is *materialized* together with the new composition, partitioning
the quadrant into angular regions ``R_0 .. R_l`` such that any scoring
function whose angle falls inside region ``R_i`` draws its top-k answer
(k <= K) from the region's K tuples.

Exactness under ties
--------------------
Processing same-angle events pairwise in arbitrary order is not sound
when three or more tuples are co-linear (they share one separating
vector, Lemma 5) or when unrelated crossings coincide.  The sweep
therefore *groups* events at equal angles and resolves each group in one
step: the only tuples whose membership can change at the group angle are
the endpoints of group events with exactly one endpoint currently in
``Q`` (an entrant must swap with the tuple holding position K, which is
a member — Lemma 4(b)(iii)).  The new composition is the exact top-K of
``Q`` united with those endpoints, ranked at the angular midpoint of the
following region, which is interior to it and hence tie-free for
distinct rank pairs.

Vectorized scan
---------------
Most events are irrelevant — neither endpoint is near the running top-K
— so the sweep never walks them one by one.  Tie-group boundaries are
precomputed from the sorted angle array (``np.diff`` finds every gap
wider than the tolerance, which is provably a group boundary under the
seed's group-start-relative comparison; only runs of narrow gaps need
the exact scalar walk).  The event stream is then scanned in
group-aligned chunks: one boolean gather against the membership array
classifies every event in the chunk, and only groups containing a
relevant event are resolved — with the same candidate sets, midpoints
and comparisons as the scalar loop, so the output regions are
bit-identical.  A membership change invalidates the remainder of the
chunk's classification, so the scan resumes from the end of the
changed group.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConstructionError
from ..obs import NULL_RECORDER, Recorder
from .events import separating_events
from .geometry import HALF_PI
from .tuples import RankTupleSet

__all__ = ["Region", "SweepStats", "sweep_regions"]

#: Chunk-size bounds for the event scan.  A composition change forces a
#: rescan of the remaining chunk, so the chunk starts small and doubles
#: only while no change occurs: dense-change stretches pay for short
#: gathers, long irrelevant tails amortize to the maximum.
_CHUNK_MIN_EVENTS = 256
_CHUNK_MAX_EVENTS = 16384


@dataclass(frozen=True)
class Region:
    """One angular region of the index.

    Covers sweep angles in ``[lo, hi)`` (the final region includes
    ``pi/2``).  ``tids`` is the top-K composition; for an order-recording
    sweep it is additionally sorted by decreasing score throughout the
    region's interior.
    """

    lo: float
    hi: float
    tids: tuple[int, ...]

    def width(self) -> float:
        return self.hi - self.lo


@dataclass(frozen=True)
class SweepStats:
    """Work counters of one sweep, for construction-cost reporting."""

    n_input: int
    pairs_considered: int
    n_events: int
    n_groups_resolved: int
    n_regions: int

    @property
    def n_separating(self) -> int:
        """Number of materialized separating points (the paper's |Sep|)."""
        return max(self.n_regions - 1, 0)


def _initial_topk_positions(tuples: RankTupleSet, k: int) -> list[int]:
    """Positions of the top-k at angle 0+ (s1 desc, then s2 desc, tid asc)."""
    order = np.lexsort((tuples.tids, -tuples.s2, -tuples.s1))
    return [int(p) for p in order[:k]]


def _topk_positions_at(
    tuples: RankTupleSet, candidates: list[int], angle: float, k: int
) -> list[int]:
    """Exact top-k among candidate positions, scored at ``angle``."""
    cand = np.asarray(candidates, dtype=np.int64)
    p1 = math.cos(angle)
    p2 = math.sin(angle)
    scores = p1 * tuples.s1[cand] + p2 * tuples.s2[cand]
    order = np.lexsort((tuples.tids[cand], -tuples.s1[cand], -scores))
    return [int(cand[p]) for p in order[:k]]


def _group_bounds(angles: np.ndarray, angle_tol: float) -> np.ndarray:
    """Tie-group boundaries of a sorted angle array.

    Returns the ascending array ``[start_0, start_1, ..., n]`` such that
    group ``g`` is ``angles[bounds[g]:bounds[g + 1]]``, using exactly
    the scalar sweep's rule: a group starting at ``s`` extends while
    ``angles[j] - angles[s] <= angle_tol``.

    Any position whose gap to its predecessor exceeds the tolerance is
    a *definite* group start: for ``s < p``, ``angles[s] <= angles[p-1]``
    and float subtraction is monotone in its subtrahend, so
    ``angles[p] - angles[s] >= angles[p] - angles[p-1] > tol`` in
    float64 too.  Only runs of narrow consecutive gaps can merge or
    split on the group-start-relative comparison, so the exact scalar
    walk is confined to those runs.
    """
    n = int(len(angles))
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    definite = np.nonzero(np.diff(angles) > angle_tol)[0] + 1
    if definite.size == n - 1:
        # Every gap exceeds the tolerance: one event per group.
        return np.arange(n + 1, dtype=np.int64)
    run_edges = np.concatenate(
        (
            np.zeros(1, dtype=np.int64),
            definite,
            np.asarray([n], dtype=np.int64),
        )
    )
    multi = np.nonzero(np.diff(run_edges) > 1)[0]
    extra: list[int] = []
    for run in multi.tolist():
        a = int(run_edges[run])
        b = int(run_edges[run + 1])
        vals = angles[a:b].tolist()
        s = 0
        for j in range(1, b - a):
            if vals[j] - vals[s] > angle_tol:
                s = j
                extra.append(a + j)
    starts = run_edges[:-1]
    if extra:
        starts = np.sort(
            np.concatenate((starts, np.asarray(extra, dtype=np.int64)))
        )
    return np.concatenate((starts, np.asarray([n], dtype=np.int64)))


def sweep_regions(
    tuples: RankTupleSet,
    k: int,
    *,
    record_order: bool = False,
    angle_tol: float = 1e-12,
    block_rows: int = 512,
    workers: int = 1,
    worker_mode: str = "thread",
    recorder: Recorder = NULL_RECORDER,
) -> tuple[list[Region], SweepStats]:
    """Run the ConstructRJI sweep over ``tuples`` for bound ``k``.

    ``tuples`` is normally the dominating set ``D_K``; the sweep is
    correct for any tuple set.  With ``record_order=True`` every change
    of *ordering* inside the top-K is materialized as well (the
    fast-query variant of Section 6.2), producing regions whose ``tids``
    are score-ordered so queries need no re-evaluation.  ``block_rows``,
    ``workers`` and ``worker_mode`` tune the separating-event pass (see
    :func:`repro.core.events.separating_events`); none affects the
    result.

    Returns the region list (covering ``[0, pi/2]`` without gaps) and
    the sweep's work counters.
    """
    if k < 1:
        raise ConstructionError(f"K must be a positive integer, got {k}")
    n = len(tuples)
    if n == 0:
        return [Region(0.0, HALF_PI, ())], SweepStats(0, 0, 0, 0, 1)

    k_eff = min(k, n)
    queue = _initial_topk_positions(tuples, k_eff)
    queue_set = set(queue)

    events = separating_events(
        tuples,
        block_rows=block_rows,
        workers=workers,
        worker_mode=worker_mode,
        recorder=recorder,
    )
    angles = events.angles
    first = events.first
    second = events.second
    n_events = len(events)

    regions: list[Region] = []
    tids = tuples.tids
    lo = 0.0
    groups_resolved = 0

    bounds = _group_bounds(angles, angle_tol)
    starts = bounds[:-1]
    # Groups whose start angle reaches pi/2 are rounding artefacts of
    # extreme separating ratios: the swap happens at the sweep's end and
    # affects no interior interval.
    g_cut = int(np.searchsorted(angles[starts], HALF_PI, side="left"))
    e_cut = int(bounds[g_cut])

    in_queue = np.zeros(n, dtype=bool)
    in_queue[np.asarray(queue, dtype=np.int64)] = True
    chunk_scans = 0

    pos = 0
    chunk = _CHUNK_MIN_EVENTS
    while pos < e_cut:
        end = min(pos + chunk, e_cut)
        if end < e_cut:
            # Round up to a group boundary so no group straddles chunks.
            end = int(bounds[int(np.searchsorted(bounds, end, side="left"))])
        chunk_scans += 1
        a_in = in_queue[first[pos:end]]
        b_in = in_queue[second[pos:end]]
        rel = (a_in | b_in) if record_order else (a_in != b_in)
        rel_pos = np.nonzero(rel)[0].tolist()
        rescan = False
        ptr = 0
        while ptr < len(rel_pos):
            event = pos + rel_pos[ptr]
            g = int(np.searchsorted(bounds, event, side="right")) - 1
            g0 = int(bounds[g])
            g1 = int(bounds[g + 1])
            groups_resolved += 1
            rel_g = rel[g0 - pos : g1 - pos]
            involved = set(first[g0:g1][rel_g].tolist())
            involved.update(second[g0:g1][rel_g].tolist())
            group_angle = float(angles[g0])
            next_angle = float(angles[g1]) if g1 < n_events else HALF_PI
            midpoint = (group_angle + next_angle) / 2.0
            candidates = list(queue_set | involved)
            new_queue = _topk_positions_at(tuples, candidates, midpoint, k_eff)
            changed = (
                new_queue != queue
                if record_order
                else set(new_queue) != queue_set
            )
            if changed:
                if group_angle > lo:
                    regions.append(
                        Region(
                            lo,
                            group_angle,
                            tuple(int(tids[p]) for p in queue),
                        )
                    )
                    lo = group_angle
                # When the group angle rounds onto the previous boundary
                # the displaced composition covered an empty interval and
                # is simply replaced.
                in_queue[np.asarray(queue, dtype=np.int64)] = False
                queue = new_queue
                queue_set = set(new_queue)
                in_queue[np.asarray(queue, dtype=np.int64)] = True
                # Membership changed, so the chunk's classification is
                # stale for everything after this group: rescan from its
                # end.  (Groups already handled above saw the membership
                # they would have seen in the scalar sweep.)
                pos = g1
                rescan = True
                break
            # Composition unchanged: the classification is still valid,
            # so just skip forward to the next relevant event past this
            # group.
            cut = g1 - pos
            while ptr < len(rel_pos) and rel_pos[ptr] < cut:
                ptr += 1
        if rescan:
            chunk = _CHUNK_MIN_EVENTS
        else:
            pos = end
            chunk = min(chunk * 2, _CHUNK_MAX_EVENTS)

    regions.append(Region(lo, HALF_PI, tuple(int(tids[p]) for p in queue)))
    if recorder.enabled:
        recorder.count("sweep.tie_groups", groups_resolved)
        recorder.count("sweep.regions", len(regions))
        recorder.count("sweep.groups", max(len(bounds) - 1, 0))
        recorder.count("sweep.chunk_scans", chunk_scans)
    stats = SweepStats(
        n_input=n,
        pairs_considered=events.pairs_considered,
        n_events=n_events,
        n_groups_resolved=groups_resolved,
        n_regions=len(regions),
    )
    return regions, stats
