"""The Ranked Join Index — the paper's primary contribution.

:class:`RankedJoinIndex` preprocesses a set of join-result tuples for a
construction-time bound ``K`` and then answers any top-k join query with
``k <= K`` for any monotone linear scoring function:

1. the input is pruned to the dominating set ``D_K`` (Section 4);
2. the ConstructRJI sweep partitions the preference space ``[0, pi/2]``
   into angular regions, each holding the K tuples every query in the
   region draws from (Sections 5-6);
3. a query locates its region by binary search on the materialized
   separating points, evaluates the scoring function on the region's K
   tuples and partially sorts — ``O(log l + K + k log k)``.

The regions live in a :class:`~repro.core.regionstore.RegionStore`:
one contiguous payload of pre-gathered ``(tid, s1, s2)`` columns plus a
CSR offsets array, so the query hot path is a boundary ``searchsorted``,
an array slice, and one vectorized score/``lexsort`` — no per-query
Python loop over tuple ids.  The boxed ``Region`` list is materialized
lazily for maintenance and introspection only.

Variants (Section 6.2):

* ``variant="ordered"`` additionally materializes every *ordering*
  change, so queries return the first ``k`` stored tuples with no
  evaluation (more separating points, faster queries);
* ``merge_slack=m`` merges regions so each holds at most ``K + m - 1``
  distinct tuples (fewer separating points, slightly slower queries),
  with ``merge_strategy`` choosing the fixed (``"every"``) or greedy
  budget-packing (``"adaptive"``) scheme.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Iterable, NamedTuple, Sequence

import numpy as np

from ..errors import ConstructionError, InvalidQueryError
from .deadline import Deadline, DeadlineLike
from .delta import DeltaStore
from ..obs import (
    NULL_RECORDER,
    ExplainRecorder,
    PhaseTiming,
    QueryExplain,
    Recorder,
    current_trace_id,
    sort_comparison_budget,
)
from .dominance import dominating_set
from .hotcache import MISS, HotRegionCache
from .merging import merge_adaptive, merge_every
from .regionstore import RegionStore
from .scoring import Preference, PreferenceLike, as_preference
from .sweep import Region, SweepStats, sweep_regions
from .tuples import RankTuple, RankTupleSet

__all__ = ["QueryResult", "BuildStats", "RankedJoinIndex"]


class QueryResult(NamedTuple):
    """One answer tuple: its identifier and score under the query.

    A named tuple rather than a dataclass: queries build ``k`` of these
    per call, and named-tuple construction is the cheapest structured
    record CPython offers on that path.
    """

    tid: int
    score: float


@dataclass(frozen=True)
class BuildStats:
    """Construction report: set sizes and per-phase wall-clock seconds.

    Mirrors the quantities of the paper's evaluation — ``n_dominating``
    is |Dom|, ``n_separating`` is |Sep|, and the three time components
    correspond to Figure 14's tDom / tSep / tBLoad breakdown.
    """

    n_input: int
    n_dominating: int
    n_separating: int
    n_regions: int
    pairs_considered: int
    n_events: int
    time_dominating: float
    time_separating: float
    time_load: float

    @property
    def time_total(self) -> float:
        return self.time_dominating + self.time_separating + self.time_load


class RankedJoinIndex:
    """Answers top-k join queries, ``k <= K``, for any linear preference."""

    def __init__(
        self,
        k_bound: int,
        regions: Sequence[Region],
        dominating: RankTupleSet,
        stats: BuildStats,
        *,
        variant: str = "standard",
        cache_size: int = 0,
        recorder: Recorder = NULL_RECORDER,
    ):
        if not regions:
            raise ConstructionError("an index needs at least one region")
        self.k_bound = k_bound
        self.variant = variant
        self._regions = list(regions)
        self._dominating = dominating
        self._stats = stats
        self._recorder = recorder
        # Lazy deletions (see repro.core.maintenance) can lower the k the
        # index still guarantees; build-time it equals the bound.
        self._k_effective = k_bound
        # Hot-region cache: angle -> region id, so repeated preferences
        # skip the descent.  Must exist before _rebuild_lookup (which
        # clears it whenever region boundaries move).
        self._cache = HotRegionCache(cache_size) if cache_size > 0 else None
        # Optional write buffer; when attached, every query merges it.
        self._delta: DeltaStore | None = None
        self._rebuild_lookup()

    @property
    def _regions(self) -> list[Region]:
        """Boxed region list, materialized from the store on demand.

        Maintenance mutates this list and re-assigns it; queries never
        touch it.  The list is cached so in-place edits stay visible
        until the next :meth:`_rebuild_lookup`.
        """
        if self._regions_cache is None:
            self._regions_cache = self._store.to_regions()
        return self._regions_cache

    @_regions.setter
    def _regions(self, regions: Sequence[Region]) -> None:
        self._regions_cache = list(regions)

    def _rebuild_lookup(self) -> None:
        """Recompute the derived query structures after region changes."""
        self._position_of = {
            int(tid): pos for pos, tid in enumerate(self._dominating.tids)
        }
        self._store = RegionStore.from_regions(self._regions, self._dominating)
        # The boxed list is now redundant with the packed store; drop it
        # and rematerialize lazily if maintenance needs it again.
        self._regions_cache: list[Region] | None = None
        # Region boundaries may have moved: cached descents are stale.
        if self._cache is not None:
            self._cache.clear()

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        tuples: RankTupleSet | Iterable[RankTuple],
        k: int,
        *,
        prune: bool = True,
        variant: str = "standard",
        merge_slack: int = 0,
        merge_strategy: str = "adaptive",
        block_rows: int = 512,
        workers: int = 1,
        worker_mode: str = "thread",
        cache_size: int = 0,
        recorder: Recorder = NULL_RECORDER,
    ) -> "RankedJoinIndex":
        """Construct an index over join-result tuples for bound ``K = k``.

        ``tuples`` is the candidate join result (e.g. the output of
        :func:`repro.core.pruning.topk_join_candidates`); with
        ``prune=True`` the dominating-set algorithm is applied first.
        ``merge_slack`` > 0 enables §6.2 region merging with per-region
        distinct-tuple budget ``K + merge_slack``.  ``block_rows`` caps
        the row-block size of the ``O(|D_K|^2)`` separating-event pass
        and ``workers`` > 1 computes those blocks concurrently — on a
        thread pool by default, or with ``worker_mode="process"`` on a
        shared-memory process pool for very large dominating sets
        (results are identical for any worker count and mode; see
        :func:`repro.core.events.separating_events`).  ``cache_size``
        > 0 attaches a :class:`~repro.core.hotcache.HotRegionCache` of
        that capacity so repeated preference angles skip the query
        descent.  All tuning arguments are keyword-only.  ``recorder``
        observes the build phases and stays attached to the index for
        query-time counters; the default null recorder observes nothing
        and costs nothing.
        """
        if variant not in ("standard", "ordered"):
            raise ConstructionError(f"unknown variant {variant!r}")
        if merge_slack < 0:
            raise ConstructionError("merge_slack must be >= 0")
        if variant == "ordered" and merge_slack:
            raise ConstructionError(
                "the ordered variant stores exact orderings and cannot be "
                "merged; use the standard variant for merging"
            )
        if not isinstance(tuples, RankTupleSet):
            tuples = RankTupleSet.from_tuples(tuples)

        with recorder.span(
            "build", {"k": k, "n_input": len(tuples), "variant": variant}
        ):
            started = time.perf_counter()
            with recorder.span("build.dominating"):
                dominating = (
                    dominating_set(tuples, k, recorder=recorder)
                    if prune
                    else tuples.sort_for_sweep()
                )
            t_dom = time.perf_counter() - started

            started = time.perf_counter()
            with recorder.span(
                "build.separating",
                {
                    "workers": workers,
                    "block_rows": block_rows,
                    "worker_mode": worker_mode,
                },
            ):
                regions, sweep_stats = sweep_regions(
                    dominating,
                    k,
                    record_order=(variant == "ordered"),
                    block_rows=block_rows,
                    workers=workers,
                    worker_mode=worker_mode,
                    recorder=recorder,
                )
            t_sep = time.perf_counter() - started

            started = time.perf_counter()
            with recorder.span("build.load"):
                if merge_slack:
                    budget = min(k, len(dominating)) + merge_slack
                    if merge_strategy == "adaptive":
                        regions = merge_adaptive(regions, budget)
                    elif merge_strategy == "every":
                        regions = merge_every(regions, merge_slack + 1)
                    else:
                        raise ConstructionError(
                            f"unknown merge_strategy {merge_strategy!r}"
                        )
            t_load = time.perf_counter() - started

        stats = cls._make_stats(
            len(tuples), len(dominating), sweep_stats, t_dom, t_sep, t_load
        )
        return cls(
            k,
            regions,
            dominating,
            stats,
            variant=variant,
            cache_size=cache_size,
            recorder=recorder,
        )

    @staticmethod
    def _make_stats(
        n_input: int,
        n_dominating: int,
        sweep_stats: SweepStats,
        t_dom: float,
        t_sep: float,
        t_load: float,
    ) -> BuildStats:
        return BuildStats(
            n_input=n_input,
            n_dominating=n_dominating,
            n_separating=sweep_stats.n_separating,
            n_regions=sweep_stats.n_regions,
            pairs_considered=sweep_stats.pairs_considered,
            n_events=sweep_stats.n_events,
            time_dominating=t_dom,
            time_separating=t_sep,
            time_load=t_load,
        )

    # -- queries -----------------------------------------------------------

    def _validate_k(self, k: int) -> None:
        """The single ``k``-bound check of every query entry point.

        Raises :class:`~repro.errors.InvalidQueryError` (a
        :class:`~repro.errors.QueryError`) for ``k`` outside ``[1, K]``
        or beyond the effective bound left by lazy deletions.
        """
        if k < 1:
            raise InvalidQueryError(f"k must be positive, got {k}")
        if k > self.k_bound:
            raise InvalidQueryError(
                f"k={k} exceeds the construction bound K={self.k_bound}"
            )
        if k > self._k_effective:
            raise InvalidQueryError(
                f"k={k} exceeds the effective bound {self._k_effective} "
                "(lazy deletions have consumed slack; rebuild the index)"
            )
        delta = self._delta
        if delta is not None:
            pending = delta.n_tombstones
            if pending and k + pending > self._k_effective:
                raise InvalidQueryError(
                    f"k={k} plus {pending} buffered deletions exceeds the "
                    f"effective bound {self._k_effective}; the merged "
                    "answer would no longer be exact — compact the delta"
                )

    def query(
        self,
        preference: PreferenceLike,
        k: int,
        *,
        deadline: DeadlineLike = None,
    ) -> list[QueryResult]:
        """Top-k join tuples under ``preference``, highest score first.

        ``preference`` is anything :func:`~repro.core.scoring.as_preference`
        accepts: a :class:`Preference`, a ``(p1, p2)`` pair, or a raw
        sweep angle.  Raises
        :class:`~repro.errors.InvalidQueryError` when ``k`` exceeds the
        construction bound ``K`` or the preference is malformed.  When
        fewer than ``k`` tuples exist in the whole input, all of them
        are returned.  ``deadline`` — an armed
        :class:`~repro.core.deadline.Deadline` or a plain budget in
        seconds — arms cooperative checks at the phase boundaries
        (locate / evaluate), raising
        :class:`~repro.errors.QueryTimeoutError` once exceeded; ``None``
        adds no work to the hot path.
        """
        self._validate_k(k)
        preference = as_preference(preference)
        deadline = Deadline.of(deadline)
        store = self._store
        cache = self._cache
        cache_hit = evicted = False
        if cache is not None:
            cached = cache.get(preference.angle)
            if cached is not MISS:
                region_id = cached
                cache_hit = True
            else:
                region_id = store.region_id(preference.angle)
                evicted = cache.put(preference.angle, region_id)
        else:
            region_id = store.region_id(preference.angle)
        if deadline is not None:
            deadline.check("locate")
        rows = store.rows(region_id)
        recorder = self._recorder
        if recorder.enabled:
            self._record_query(
                recorder,
                region_id,
                len(rows),
                cache_hit=cache_hit,
                cache_evicted=evicted,
            )
        p1 = preference.p1
        p2 = preference.p2
        new = tuple.__new__
        delta = self._delta
        if delta is not None and not delta.is_empty:
            # Merged view: base rows minus tombstones plus buffered
            # inserts, all scored with the same scalar arithmetic, so
            # the reversed tuple sort realizes the canonical order
            # bit-identically to a from-scratch rebuild.
            if recorder.enabled:
                recorder.count("delta.merged_queries")
            scored = delta.merged_scored(rows, p1, p2)
            scored.sort(reverse=True)
            if deadline is not None:
                deadline.check("evaluate")
            return [
                new(QueryResult, (-neg_tid, score))
                for score, _, neg_tid in scored[:k]
            ]
        if self.variant == "ordered":
            return [
                new(QueryResult, (-neg_tid, p1 * s1 + p2 * s2))
                for s1, s2, neg_tid in rows[:k]
            ]
        # Scalar scoring over the unboxed rows: plain float64 arithmetic
        # computes the exact same score bits as the column kernels (a
        # region holds K-ish rows, far below the break-even size of a
        # NumPy kernel call), and the reversed (score, s1, -tid) tuple
        # sort realizes the same total order (score desc, s1 desc, tid
        # asc) as the pre-columnar lexsort, so answers are bit-identical
        # to the scalar seed path.
        scored = [
            (p1 * s1 + p2 * s2, s1, neg_tid) for s1, s2, neg_tid in rows
        ]
        scored.sort(reverse=True)
        if deadline is not None:
            deadline.check("evaluate")
        return [
            new(QueryResult, (-neg_tid, score))
            for score, _, neg_tid in scored[:k]
        ]

    def _record_query(
        self,
        recorder: Recorder,
        region_id: int,
        n_rows: int,
        *,
        cache_hit: bool = False,
        cache_evicted: bool = False,
    ) -> None:
        """Emit the per-query metric events of one scalar query.

        The single emission point shared by :meth:`query` and
        :meth:`explain`, so an explained query is indistinguishable from
        a plain one in any attached recorder — names, values and
        attributes included.  A hot-region cache hit observes a descent
        depth of 0 (the binary search never ran); the cache counters are
        emitted only when a cache is configured, so uncached indices
        keep their exact pre-cache metric stream.
        """
        recorder.count("rji.queries")
        recorder.observe("rji.regions_touched", 1)
        recorder.observe(
            "rji.descent_steps",
            0 if cache_hit else max(len(self._store.lows), 1).bit_length(),
        )
        recorder.observe(
            "rji.tuples_evaluated", n_rows, {"region": region_id}
        )
        if self._cache is not None:
            recorder.count(
                "rji.cache.hits" if cache_hit else "rji.cache.misses"
            )
            if cache_evicted:
                recorder.count("rji.cache.evictions")

    def explain(
        self, preference: PreferenceLike, k: int, *, record: bool = True
    ) -> QueryExplain:
        """Answer a query *and* capture its structural cost breakdown.

        Runs the same locate / materialize / evaluate pipeline as
        :meth:`query` — the returned record's ``results`` are identical
        to ``query(preference, k)`` — while teeing every metric event
        into the index's own recorder through an
        :class:`~repro.obs.ExplainRecorder`, so ``descent_depth``,
        ``region_size`` and ``tuples_evaluated`` equal the observations
        an attached :class:`~repro.obs.MetricsRecorder` makes for the
        same query.  ``record=False`` detaches the tee (the SQL layer's
        ``EXPLAIN``, which must not perturb query counters).  Render the
        record with :func:`~repro.obs.render_explain`.
        """
        self._validate_k(k)
        preference = as_preference(preference)
        tee = ExplainRecorder(self._recorder if record else NULL_RECORDER)
        store = self._store
        cache = self._cache

        started = time.perf_counter()
        cache_hit = evicted = False
        if cache is not None:
            cached = cache.get(preference.angle)
            if cached is not MISS:
                region_id, path = cached, ()
                cache_hit = True
            else:
                region_id, path = store.descent_path(preference.angle)
                evicted = cache.put(preference.angle, region_id)
        else:
            region_id, path = store.descent_path(preference.angle)
        t_locate = time.perf_counter() - started

        started = time.perf_counter()
        rows = store.rows(region_id)
        t_materialize = time.perf_counter() - started

        self._record_query(
            tee,
            region_id,
            len(rows),
            cache_hit=cache_hit,
            cache_evicted=evicted,
        )
        tee.count("rji.explains")

        started = time.perf_counter()
        p1 = preference.p1
        p2 = preference.p2
        delta = self._delta
        if delta is not None and not delta.is_empty:
            # Mirror the merged query path exactly (results and metric
            # stream), so an explained write-buffered query stays
            # indistinguishable from a plain one.
            tee.count("delta.merged_queries")
            scored = delta.merged_scored(rows, p1, p2)
            scored.sort(reverse=True)
            results = tuple(
                QueryResult(-neg_tid, score)
                for score, _, neg_tid in scored[:k]
            )
            comparisons = sort_comparison_budget(len(scored))
        elif self.variant == "ordered":
            results = tuple(
                QueryResult(-neg_tid, p1 * s1 + p2 * s2)
                for s1, s2, neg_tid in rows[:k]
            )
            comparisons = 0
        else:
            scored = [
                (p1 * s1 + p2 * s2, s1, neg_tid) for s1, s2, neg_tid in rows
            ]
            scored.sort(reverse=True)
            results = tuple(
                QueryResult(-neg_tid, score)
                for score, _, neg_tid in scored[:k]
            )
            comparisons = sort_comparison_budget(len(rows))
        t_score = time.perf_counter() - started

        explain = QueryExplain(
            p1=p1,
            p2=p2,
            angle=preference.angle,
            k=k,
            k_bound=self.k_bound,
            variant=self.variant,
            n_regions=len(store),
            region_id=region_id,
            region_lo=float(store.lo[region_id]),
            region_hi=float(store.hi[region_id]),
            region_size=len(rows),
            descent_depth=(
                0 if cache_hit else max(len(store.lows), 1).bit_length()
            ),
            descent_path=path,
            cache_hit=cache_hit,
            tuples_evaluated=len(rows),
            sort_comparisons=comparisons,
            n_results=len(results),
            results=results,
            phases=(
                PhaseTiming("locate", t_locate),
                PhaseTiming("materialize", t_materialize),
                PhaseTiming("score_sort", t_score),
            ),
            trace_id=current_trace_id(),
        )
        tee.record(explain)
        return explain

    def query_weights(self, p1: float, p2: float, k: int) -> list[QueryResult]:
        """Convenience wrapper accepting bare preference weights."""
        return self.query(Preference(p1, p2), k)

    def query_batch(
        self,
        preferences: Sequence[PreferenceLike],
        k: int,
        *,
        deadline: DeadlineLike = None,
    ) -> list[list[QueryResult]]:
        """Answer many queries at once, amortizing region work.

        Each preference is anything
        :func:`~repro.core.scoring.as_preference` accepts.  Queries are
        grouped by the region their angle falls into; each region's
        payload columns are sliced once from the store and scored for
        all of its queries.  Results are identical to issuing
        :meth:`query` per preference.  ``deadline`` (a
        :class:`~repro.core.deadline.Deadline` or seconds) is checked
        once per region group, so a batch abandons work within one
        group's worth of evaluation after its budget expires.  The
        hot-region cache is not consulted here: one vectorized
        ``searchsorted`` already locates every region in the batch, so
        per-angle memoization would only add lock traffic.
        """
        self._validate_k(k)
        coerced = [as_preference(p) for p in preferences]
        deadline = Deadline.of(deadline)
        if not coerced:
            return []
        store = self._store
        angles = np.array([p.angle for p in coerced])
        region_ids = store.region_ids(angles)
        unique_regions = np.unique(region_ids)
        recorder = self._recorder
        if recorder.enabled:
            recorder.count("rji.batch.calls")
            recorder.count("rji.queries", len(coerced))
            recorder.observe("rji.batch.queries", len(coerced))
            recorder.observe("rji.batch.groups", len(unique_regions))
            recorder.observe("rji.regions_touched", len(unique_regions))

        delta = self._delta
        merged = delta is not None and not delta.is_empty
        if merged and recorder.enabled:
            recorder.count("delta.merged_queries", len(coerced))

        results: list[list[QueryResult] | None] = [None] * len(coerced)
        for region_id in unique_regions:
            if deadline is not None:
                deadline.check("batch")
            start, stop = store.span(int(region_id))
            queries = np.nonzero(region_ids == region_id)[0]
            if stop == start and not merged:
                for q in queries:
                    results[int(q)] = []
                continue
            s1 = store.s1[start:stop]
            s2 = store.s2[start:stop]
            neg_s1 = store.neg_s1[start:stop]
            tids = store.tids[start:stop]
            if merged:
                # Merged view: drop tombstoned base rows, append the
                # buffered inserts, and recompute the negated-s1 key
                # (float negation is exact, so the combined lexsort is
                # bit-identical to the scalar merged sort).
                assert delta is not None
                keep = delta.survivor_mask(tids)
                d_tids, d_s1, d_s2 = delta.insert_columns()
                tids = np.concatenate((tids[keep], d_tids))
                s1 = np.concatenate((s1[keep], d_s1))
                s2 = np.concatenate((s2[keep], d_s2))
                neg_s1 = -s1
            if recorder.enabled:
                recorder.count(
                    "rji.batch.tuples_evaluated",
                    len(tids) * len(queries),
                    {"region": int(region_id)},
                )
            for q in queries:
                preference = coerced[int(q)]
                # Same arithmetic as the scalar path, so batch answers
                # are bit-identical to per-query answers.
                scores = preference.p1 * s1 + preference.p2 * s2
                if self.variant == "ordered" and not merged:
                    chosen = np.arange(min(k, stop - start))
                else:
                    chosen = np.lexsort((tids, neg_s1, -scores))[:k]
                results[int(q)] = [
                    QueryResult(tid, score)
                    for tid, score in zip(
                        tids[chosen].tolist(), scores[chosen].tolist()
                    )
                ]
        return results  # type: ignore[return-value]

    # -- delta merge -------------------------------------------------------

    def attach_delta(self, delta: DeltaStore) -> None:
        """Merge ``delta`` into every subsequent query answer.

        The write path of the durable tier: owners buffer inserts and
        tombstones in the delta and leave the base store immutable until
        compaction rebuilds it.  While attached, :meth:`_validate_k`
        additionally requires ``k + n_tombstones <= k_effective`` so the
        merged answer stays exact (see :mod:`repro.core.delta`).
        """
        self._delta = delta

    def detach_delta(self) -> DeltaStore | None:
        """Stop merging; returns the previously attached delta."""
        delta = self._delta
        self._delta = None
        return delta

    @property
    def delta(self) -> DeltaStore | None:
        """The attached write buffer, or ``None``."""
        return self._delta

    def _region_for(self, angle: float) -> Region:
        return self._store.region(self._store.region_id(angle))

    def _score_tid(self, preference: Preference, tid: int) -> float:
        pos = self._position_of[tid]
        return preference.score(
            float(self._dominating.s1[pos]), float(self._dominating.s2[pos])
        )

    # -- introspection -------------------------------------------------------

    @property
    def stats(self) -> BuildStats:
        """Construction statistics (|Dom|, |Sep|, phase timings)."""
        return self._stats

    @property
    def store(self) -> RegionStore:
        """The packed columnar region store serving the query paths."""
        return self._store

    @property
    def cache(self) -> HotRegionCache | None:
        """The hot-region descent cache, or ``None`` when disabled."""
        return self._cache

    @property
    def regions(self) -> list[Region]:
        """The materialized angular regions, left to right."""
        return list(self._regions)

    @property
    def dominating(self) -> RankTupleSet:
        """The pruned tuple set the index is built over."""
        return self._dominating

    @property
    def n_regions(self) -> int:
        return len(self._store)

    @property
    def k_effective(self) -> int:
        """Largest k the index currently guarantees (< K after lazy deletes)."""
        return self._k_effective

    @property
    def n_separating(self) -> int:
        """Number of separating points currently materialized."""
        return len(self._store) - 1

    def logical_size_bytes(self, *, tid_bytes: int = 8, key_bytes: int = 8) -> int:
        """Back-of-envelope in-memory index payload size.

        Counts the separating-point keys and the per-region tuple-id
        payload.  For byte-exact, page-based accounting (Figure 16) use
        :class:`repro.storage.diskindex.DiskRankedJoinIndex`.
        """
        keys = len(self._store.lows) * key_bytes
        payload = self._store.n_positions * tid_bytes
        rank_values = len(self._dominating) * (tid_bytes + 16)
        return keys + payload + rank_values

    def check_invariants(self) -> None:
        """Validate structural invariants; raises on violation (tests)."""
        if not math.isclose(self._regions[0].lo, 0.0, abs_tol=1e-15):
            raise ConstructionError("first region must start at angle 0")
        if not math.isclose(self._regions[-1].hi, math.pi / 2, rel_tol=1e-12):
            raise ConstructionError("last region must end at pi/2")
        for left, right in zip(self._regions, self._regions[1:]):
            if left.hi != right.lo:
                raise ConstructionError(
                    f"regions must tile the quadrant; gap at {left.hi}"
                )
            if left.lo >= left.hi:
                raise ConstructionError("regions must have positive width")
        for region in self._regions:
            if len(set(region.tids)) != len(region.tids):
                raise ConstructionError("region tuple ids must be distinct")
            for tid in region.tids:
                if tid not in self._position_of:
                    raise ConstructionError(
                        f"region references unknown tuple id {tid}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RankedJoinIndex(K={self.k_bound}, regions={len(self._store)}, "
            f"dominating={len(self._dominating)}, variant={self.variant!r})"
        )
