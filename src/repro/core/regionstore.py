"""Columnar storage of the materialized angular regions.

The sweep produces regions as Python tuples of tuple ids — convenient
for construction and maintenance, but hostile to the query path: every
query had to translate ``region.tids`` into array positions through a
dict lookup per tuple before any vectorized work could start, and the
``O(n * K)`` region payload lived as boxed Python ints.

:class:`RegionStore` packs the whole region structure into five
contiguous NumPy arrays, built once per (re)construction:

``lows``
    ``float64[l]`` — the ``l`` interior separating points; a query
    locates its region with one binary search (the paper's
    ``O(log2 l)`` term).
``offsets``
    ``int64[l + 2]`` — CSR-style starts of each region's slice in the
    payload columns.
``tids`` / ``s1`` / ``s2``
    The gathered payload columns: region ``i`` owns rows
    ``offsets[i]:offsets[i + 1]``, holding the tuple ids and both rank
    values of its composition, pre-gathered from the dominating set so
    a query is boundary search + slice + one vectorized score pass.

Values are copied *from* the dominating arrays, so query answers are
bit-identical to scoring the dominating set through a position gather —
the arithmetic sees the exact same float64 inputs.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Sequence

import numpy as np

from ..errors import ConstructionError
from .sweep import Region
from .tuples import RankTupleSet

__all__ = ["RegionStore"]


class RegionStore:
    """Packed columnar image of an index's angular regions."""

    __slots__ = (
        "lo",
        "hi",
        "lows",
        "lows_list",
        "offsets",
        "tids",
        "s1",
        "s2",
        "neg_s1",
        "_rows",
    )

    def __init__(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        offsets: np.ndarray,
        tids: np.ndarray,
        s1: np.ndarray,
        s2: np.ndarray,
    ):
        self.lo = lo
        self.hi = hi
        self.lows = lo[1:]
        # Plain-float mirror of ``lows`` for scalar lookups: ``bisect``
        # on a list is several times cheaper than a one-element
        # ``searchsorted`` call.
        self.lows_list: list[float] = self.lows.tolist()
        self.offsets = offsets
        self.tids = tids
        self.s1 = s1
        self.s2 = s2
        # Pre-negated sort key for the (score desc, s1 desc, tid asc)
        # lexsort of the batch query path.
        self.neg_s1 = -s1
        # Lazily unboxed per-region rows for the scalar query fast path
        # (see :meth:`rows`).
        self._rows: list[list[tuple[float, float, int]] | None] = [
            None
        ] * len(lo)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_columns(
        cls,
        lo: np.ndarray,
        hi: np.ndarray,
        offsets: np.ndarray,
        tids: np.ndarray,
        s1: np.ndarray,
        s2: np.ndarray,
    ) -> "RegionStore":
        """Adopt pre-built columns without copying them.

        The zero-copy attach point: the columns are taken as-is — they
        may be *read-only* views (e.g. ``np.frombuffer`` over validated
        pages of a memory-mapped index file); every query path reads
        the columns and never writes, and the derived arrays
        (``neg_s1``, the lazy row cache) are fresh allocations.  Shapes
        are validated; contents are trusted (callers hold columns that
        already passed construction or page-checksum verification).
        """
        n_regions = len(lo)
        if n_regions == 0:
            raise ConstructionError("a region store needs at least one region")
        if len(hi) != n_regions or len(offsets) != n_regions + 1:
            raise ConstructionError(
                "column shapes disagree: "
                f"lo={len(lo)}, hi={len(hi)}, offsets={len(offsets)}"
            )
        if not (len(tids) == len(s1) == len(s2) == int(offsets[-1])):
            raise ConstructionError(
                "payload columns disagree with the offsets array"
            )
        return cls(lo, hi, offsets, tids, s1, s2)

    @classmethod
    def from_regions(
        cls, regions: Sequence[Region], dominating: RankTupleSet
    ) -> "RegionStore":
        """Pack a region list over its dominating set into columns.

        Raises :class:`~repro.errors.ConstructionError` when a region
        references a tuple id absent from ``dominating`` — the same
        condition ``check_invariants`` reports, surfaced at build time.
        """
        if not regions:
            raise ConstructionError("a region store needs at least one region")
        n_regions = len(regions)
        lo = np.fromiter(
            (r.lo for r in regions), dtype=np.float64, count=n_regions
        )
        hi = np.fromiter(
            (r.hi for r in regions), dtype=np.float64, count=n_regions
        )
        lengths = np.fromiter(
            (len(r.tids) for r in regions), dtype=np.int64, count=n_regions
        )
        offsets = np.zeros(n_regions + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])

        flat = [tid for region in regions for tid in region.tids]
        all_tids = np.asarray(flat, dtype=np.int64)
        if all_tids.size == 0:
            empty_f = np.empty(0, dtype=np.float64)
            return cls(lo, hi, offsets, all_tids, empty_f, empty_f.copy())
        if len(dominating) == 0:
            raise ConstructionError(
                "regions reference tuples but the dominating set is empty"
            )

        # tid -> array position, vectorized through a sorted view.
        order = np.argsort(dominating.tids, kind="stable")
        sorted_tids = dominating.tids[order]
        found = np.minimum(
            np.searchsorted(sorted_tids, all_tids), len(sorted_tids) - 1
        )
        missing = sorted_tids[found] != all_tids
        if missing.any():
            unknown = int(all_tids[int(np.argmax(missing))])
            raise ConstructionError(
                f"region references unknown tuple id {unknown}"
            )
        positions = order[found]
        return cls(
            lo,
            hi,
            offsets,
            all_tids,
            dominating.s1[positions],
            dominating.s2[positions],
        )

    # -- lookups -----------------------------------------------------------

    def region_id(self, angle: float) -> int:
        """Index of the region whose ``[lo, hi)`` span contains ``angle``."""
        return bisect_right(self.lows_list, angle)

    def region_ids(self, angles: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`region_id` for an array of angles."""
        return np.searchsorted(self.lows, angles, side="right")

    def descent_path(self, angle: float) -> tuple[int, tuple[int, ...]]:
        """Region id plus the separating-point positions probed to find it.

        Replicates the ``bisect_right`` binary search of
        :meth:`region_id` step by step, so the returned id always equals
        ``region_id(angle)`` and the path is the exact probe sequence of
        the descent — the EXPLAIN view of the paper's ``O(log2 l)``
        locate phase.
        """
        lows = self.lows_list
        lo, hi = 0, len(lows)
        path: list[int] = []
        while lo < hi:
            mid = (lo + hi) // 2
            path.append(mid)
            if angle < lows[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo, tuple(path)

    def span(self, region_id: int) -> tuple[int, int]:
        """Payload-row range ``[start, stop)`` of one region."""
        return int(self.offsets[region_id]), int(self.offsets[region_id + 1])

    def rows(self, region_id: int) -> list[tuple[float, float, int]]:
        """One region's payload as plain ``(s1, s2, -tid)`` Python rows.

        Regions are small (K to K+m-1 rows), so scoring them with plain
        float arithmetic beats the fixed call overhead of NumPy kernels;
        the values are the same float64s as the columns, so either path
        computes bit-identical scores.  The tuple id is stored *negated*
        so a ``reverse=True`` sort of ``(score, s1, -tid)`` keys yields
        the query order (score desc, s1 desc, tid asc) with no per-row
        negations at query time.  Unboxed lazily per region and cached;
        the cache write is idempotent, making the benign race under
        concurrent readers harmless.
        """
        cached = self._rows[region_id]
        if cached is None:
            start, stop = self.span(region_id)
            cached = list(
                zip(
                    self.s1[start:stop].tolist(),
                    self.s2[start:stop].tolist(),
                    (-self.tids[start:stop]).tolist(),
                )
            )
            self._rows[region_id] = cached
        return cached

    def region(self, region_id: int) -> Region:
        """Materialize one region back into its boxed form."""
        start, stop = self.span(region_id)
        return Region(
            float(self.lo[region_id]),
            float(self.hi[region_id]),
            tuple(self.tids[start:stop].tolist()),
        )

    def to_regions(self) -> list[Region]:
        """Materialize the full boxed region list (maintenance paths)."""
        flat = self.tids.tolist()
        lo = self.lo.tolist()
        hi = self.hi.tolist()
        bounds = self.offsets.tolist()
        return [
            Region(lo[i], hi[i], tuple(flat[bounds[i] : bounds[i + 1]]))
            for i in range(len(lo))
        ]

    # -- accounting --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.lo)

    @property
    def n_positions(self) -> int:
        """Total payload rows (sum of region compositions)."""
        return int(self.offsets[-1])

    @property
    def nbytes(self) -> int:
        """Packed size of every array in the store."""
        return (
            self.lo.nbytes
            + self.hi.nbytes
            + self.offsets.nbytes
            + self.tids.nbytes
            + self.s1.nbytes
            + self.s2.nbytes
            + self.neg_s1.nbytes
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RegionStore(regions={len(self)}, rows={self.n_positions}, "
            f"bytes={self.nbytes})"
        )
