"""K-bound advisor — moved to :mod:`repro.storage.advisor`.

The advisor serializes every candidate index through the paged-storage
layer to measure its space byte-exactly, so its implementation lives in
``storage`` where that dependency points downward.  This module keeps
the historical ``repro.core.advisor`` import path alive; new code
should import from ``repro.storage``.
"""

from __future__ import annotations

import warnings

# Back-compat shim: the one deliberate upward import in ``core`` besides
# ``core.single``, kept so published ``repro.core.advisor`` imports
# don't break.
from ..storage.advisor import (  # rjilint: disable=RJI001
    AdvisorReport,
    CandidateReport,
    advise_k,
)

__all__ = ["CandidateReport", "AdvisorReport", "advise_k"]

warnings.warn(
    "repro.core.advisor is deprecated; import advise_k from "
    "repro.storage (see docs/API.md, deprecation policy)",
    DeprecationWarning,
    stacklevel=2,
)
