"""The delta store: a write buffer that queries merge *exactly*.

The paper defers incremental maintenance to future work; the repo's
``repro.core.maintenance`` closes part of that gap with exact region
surgery, but every mutation rewrites the region store in place.  The
LSM-flavored alternative implemented here buffers writes in a
:class:`DeltaStore` — pending inserts keyed by tuple id plus delete
tombstones — and lets :meth:`RankedJoinIndex.query
<repro.core.index.RankedJoinIndex.query>` merge the buffer into every
answer, so the immutable base index keeps serving while writers only
touch the (tiny) delta.

Exactness argument.  A query for ``k`` results over the merged view
``(base \\ tombstones) ∪ inserts`` is answered from one base region's
rows: the region holds the top-``K`` tuples of the base at every angle
it covers, so after removing at most ``T`` tombstoned tuples the
surviving rows still contain the true top-``(K - T)`` of
``base \\ tombstones``.  Every pending insert is considered explicitly.
Hence the merged top-``k`` is exact whenever ``k + T <= K_effective`` —
the precondition :meth:`RankedJoinIndex._validate_k
<repro.core.index.RankedJoinIndex._validate_k>` enforces; past it the
query raises a typed error and the owner must compact.

Entries are tagged with the WAL log-sequence-number that produced them
so a compaction that rebuilds the base from a snapshot at LSN ``n`` can
:meth:`~DeltaStore.clear_upto` ``n`` and keep serving the writes that
arrived while the rebuild ran.
"""

from __future__ import annotations

import math
from typing import Iterator, Protocol, Sequence, runtime_checkable

import numpy as np

from ..errors import MaintenanceError
from .tuples import RankTuple

__all__ = ["DeltaStore", "SupportsWal"]


@runtime_checkable
class SupportsWal(Protocol):
    """The write-ahead-log surface the core write path relies on.

    ``core`` may not import ``storage`` (RJI001), so the managed and
    concurrent indices accept any object with this duck-typed shape —
    in practice :class:`repro.storage.wal.WriteAheadLog`, or a test
    double.  ``commit()`` is the acknowledgement point: a write may only
    be applied to the in-memory delta after its records are durable.
    """

    def append_insert(self, tid: int, s1: float, s2: float) -> int: ...

    def append_delete(self, tid: int) -> int: ...

    def commit(self) -> int: ...

    @property
    def last_lsn(self) -> int: ...


class DeltaStore:
    """Pending inserts and delete tombstones, merged into answers.

    Not thread-safe by itself: owners serialize writers (and, for
    concurrent readers, snapshot or lock around mutation) exactly as
    they already do for the base index.
    """

    __slots__ = ("_inserts", "_tombstones", "_columns", "_hidden_sorted")

    def __init__(self) -> None:
        #: tid -> (tuple, lsn) for writes not yet compacted into the base.
        self._inserts: dict[int, tuple[RankTuple, int]] = {}
        #: tid -> lsn of the delete that tombstoned it.
        self._tombstones: dict[int, int] = {}
        # Lazily materialized numpy views for the batch merge path.
        self._columns: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._hidden_sorted: np.ndarray | None = None

    # -- mutation ----------------------------------------------------------

    def insert(self, tuple_: RankTuple, lsn: int = 0) -> None:
        """Buffer an insert.  The caller has checked ``tid`` is not live.

        A tombstone for the same tid is kept: it hides the *base* copy
        that the earlier delete removed, while the buffered insert
        supplies the new values.
        """
        tid, s1, s2 = tuple_
        if not (math.isfinite(s1) and math.isfinite(s2)):
            raise MaintenanceError("rank values must be finite")
        if tid in self._inserts:
            raise MaintenanceError(
                f"tuple id {tid} already buffered in the delta"
            )
        self._inserts[tid] = (RankTuple(tid, float(s1), float(s2)), lsn)
        self._invalidate()

    def delete(self, tid: int, lsn: int = 0) -> None:
        """Buffer a delete.  The caller has checked ``tid`` is live.

        A pending insert for ``tid`` is cancelled, and a tombstone is
        recorded unconditionally: if the base never held the tid the
        tombstone filters nothing (harmless), and after a compaction
        snapshot that *did* bake the insert in, the tombstone is what
        keeps the tuple hidden.
        """
        self._inserts.pop(tid, None)
        self._tombstones[tid] = lsn
        self._invalidate()

    def replay(self, op: str, tuple_: RankTuple) -> None:
        """Idempotently re-apply one recovered WAL record.

        Unlike :meth:`insert`, a duplicate tid overwrites: replay may
        revisit records already reflected in a snapshot.
        """
        if op == "insert":
            self._inserts[tuple_.tid] = (tuple_, 0)
            self._invalidate()
        elif op == "delete":
            self.delete(tuple_.tid)
        else:
            raise MaintenanceError(f"unknown delta replay op {op!r}")

    def clear(self) -> None:
        """Drop every buffered entry (the base now reflects them all)."""
        self._inserts.clear()
        self._tombstones.clear()
        self._invalidate()

    def clear_upto(self, lsn: int) -> None:
        """Drop entries produced at or before ``lsn``.

        Used after a background compaction built a fresh base from a
        pool snapshot taken at ``lsn``: entries newer than the snapshot
        stay buffered and keep merging into answers.
        """
        self._inserts = {
            tid: entry
            for tid, entry in self._inserts.items()
            if entry[1] > lsn
        }
        self._tombstones = {
            tid: at for tid, at in self._tombstones.items() if at > lsn
        }
        self._invalidate()

    def _invalidate(self) -> None:
        self._columns = None
        self._hidden_sorted = None

    # -- introspection -----------------------------------------------------

    @property
    def n_inserts(self) -> int:
        return len(self._inserts)

    @property
    def n_tombstones(self) -> int:
        return len(self._tombstones)

    @property
    def n_ops(self) -> int:
        """Buffered entries, the quantity compaction thresholds watch."""
        return len(self._inserts) + len(self._tombstones)

    @property
    def is_empty(self) -> bool:
        return not (self._inserts or self._tombstones)

    def pending_inserts(self) -> Iterator[RankTuple]:
        """The buffered insert tuples (tid order, deterministic)."""
        for tid in sorted(self._inserts):
            yield self._inserts[tid][0]

    def tombstoned(self, tid: int) -> bool:
        return tid in self._tombstones

    # -- query-side merge helpers -----------------------------------------

    def merged_scored(
        self,
        rows: Sequence[tuple[float, float, int]],
        p1: float,
        p2: float,
    ) -> list[tuple[float, float, int]]:
        """Score base rows (minus tombstones) plus buffered inserts.

        ``rows`` are the region's ``(s1, s2, -tid)`` triples.  The
        returned ``(score, s1, -tid)`` triples use the exact scalar
        arithmetic of the base query path, so sorting them reversed
        realizes the canonical total order (score desc, s1 desc, tid
        asc) bit-identically to a from-scratch rebuild.

        A base row is hidden by a tombstone *or* by a buffered insert
        of the same tid: the delta entry always supersedes the base
        copy.  The two never coexist in normal maintenance (an insert
        requires the tid dead), but WAL replay onto an image that was
        saved mid-compaction legitimately revisits records the image
        already reflects — without the supersede rule the tuple would
        be served twice.
        """
        tombstones = self._tombstones
        inserts = self._inserts
        if tombstones or inserts:
            scored = [
                (p1 * s1 + p2 * s2, s1, neg_tid)
                for s1, s2, neg_tid in rows
                if -neg_tid not in tombstones and -neg_tid not in inserts
            ]
        else:
            scored = [
                (p1 * s1 + p2 * s2, s1, neg_tid) for s1, s2, neg_tid in rows
            ]
        for tid in self._inserts:
            t = self._inserts[tid][0]
            scored.append((p1 * t.s1 + p2 * t.s2, t.s1, -tid))
        return scored

    def survivor_mask(self, tids: np.ndarray) -> np.ndarray:
        """Mask of base tids not tombstoned nor superseded by an insert.

        Buffered inserts hide their base copies for the same reason as
        in :meth:`merged_scored`: the delta entry is the live version.
        """
        if not self._tombstones and not self._inserts:
            return np.ones(len(tids), dtype=bool)
        if self._hidden_sorted is None:
            self._hidden_sorted = np.array(
                sorted(self._tombstones.keys() | self._inserts.keys()),
                dtype=np.int64,
            )
        return ~np.isin(tids, self._hidden_sorted)

    def insert_columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Buffered inserts as parallel ``(tids, s1, s2)`` columns."""
        if self._columns is None:
            ordered = sorted(self._inserts)
            self._columns = (
                np.array(ordered, dtype=np.int64),
                np.array(
                    [self._inserts[t][0].s1 for t in ordered],
                    dtype=np.float64,
                ),
                np.array(
                    [self._inserts[t][0].s2 for t in ordered],
                    dtype=np.float64,
                ),
            )
        return self._columns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeltaStore(inserts={len(self._inserts)}, "
            f"tombstones={len(self._tombstones)})"
        )
