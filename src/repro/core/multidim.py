"""Beyond two rank attributes — the paper's future-work direction.

Section 9 names "generalizing RJI in dimensions more than two" (joins of
more than a pair of relations) as open.  The exact 2-d construction
sweeps a 1-parameter family of directions; in d dimensions the
preference space is a (d-1)-sphere octant and the arrangement of
separating hyperplanes grows combinatorially.  This module implements
the natural practical generalization with a provable (weaker) guarantee:

1. **K-dominance pruning generalizes verbatim** (Lemmas 1-2 hold in any
   dimension): :func:`nd_dominating_set` keeps only tuples dominated by
   fewer than K others.
2. **Convex-hull layering** (the Onion principle, exact in any
   dimension): for every monotone linear function, the rank-j tuple lies
   within the first j hull layers, so merging the first ``min(k, L)``
   layers answers any top-k query exactly.  Unlike the 2-d RJI the
   per-query work is not worst-case logarithmic — it is bounded by the
   size of the first k layers of the *pruned* set, which the dominance
   step keeps small.

:func:`topk_multiway_join_candidates` extends Lemma 1 to star equi-joins
of ``m`` relations: within each join-key group every input contributes
only its K highest-ranked rows, bounding the candidate set by
``K^(m-1)`` per left row instead of the full cross product.

Degenerate inputs (fewer points than a full-dimensional simplex, or all
points on a common hyperplane) make Qhull fail; the peeler then places
all remaining points in one layer, which keeps answers exact — a layer
that is a superset of the hull vertices preserves the rank-j-in-first-j
invariant — at the cost of scanning that layer.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable

import numpy as np

try:  # scipy is an optional accelerator; 2-d always works without it
    from scipy.spatial import ConvexHull, QhullError
except ImportError:  # pragma: no cover - scipy is installed in CI
    ConvexHull = None
    QhullError = Exception

from ..errors import ConstructionError, QueryError
from .index import QueryResult

__all__ = [
    "NDTupleSet",
    "nd_dominator_counts",
    "nd_dominating_set",
    "LayeredQueryStats",
    "LayeredTopKIndex",
    "topk_multiway_join_candidates",
]


@dataclass(frozen=True)
class NDTupleSet:
    """Tuples with ``d >= 2`` rank values: parallel tids and a value matrix."""

    tids: np.ndarray
    values: np.ndarray  # shape (n, d)

    def __post_init__(self) -> None:
        tids = np.ascontiguousarray(self.tids, dtype=np.int64)
        values = np.ascontiguousarray(self.values, dtype=np.float64)
        if values.ndim != 2 or values.shape[1] < 2:
            raise ConstructionError(
                f"values must be an (n, d>=2) matrix, got shape {values.shape}"
            )
        if len(tids) != len(values):
            raise ConstructionError("tids and values must be parallel")
        if len(values) and not np.isfinite(values).all():
            raise ConstructionError("rank values must be finite")
        if len(tids) != len(np.unique(tids)):
            raise ConstructionError("tuple identifiers must be unique")
        object.__setattr__(self, "tids", tids)
        object.__setattr__(self, "values", values)

    @classmethod
    def from_matrix(cls, values: np.ndarray) -> "NDTupleSet":
        values = np.asarray(values, dtype=np.float64)
        return cls(np.arange(len(values), dtype=np.int64), values)

    def __len__(self) -> int:
        return len(self.tids)

    @property
    def dimensions(self) -> int:
        return self.values.shape[1]

    def __getitem__(self, index) -> "NDTupleSet":
        return NDTupleSet(self.tids[index], self.values[index])

    def scores(self, weights: np.ndarray) -> np.ndarray:
        return self.values @ np.asarray(weights, dtype=np.float64)


def nd_dominator_counts(
    tuples: NDTupleSet, *, block_rows: int = 256
) -> np.ndarray:
    """Exact dominator count per tuple in any dimension (``O(n^2 d)``).

    ``u`` dominates ``t`` when ``u >= t`` component-wise and the vectors
    differ; processed in row blocks to bound temporary memory.
    """
    values = tuples.values
    n = len(values)
    counts = np.zeros(n, dtype=np.int64)
    for start in range(0, n, block_rows):
        stop = min(start + block_rows, n)
        block = values[start:stop]  # (b, d)
        ge = (values[None, :, :] >= block[:, None, :]).all(axis=2)  # (b, n)
        identical = (values[None, :, :] == block[:, None, :]).all(axis=2)
        counts[start:stop] = (ge & ~identical).sum(axis=1)
    return counts


def nd_dominating_set(tuples: NDTupleSet, k: int) -> NDTupleSet:
    """Tuples dominated by fewer than ``k`` others (Lemma 2, any d)."""
    if k < 1:
        raise ConstructionError(f"K must be a positive integer, got {k}")
    if len(tuples) == 0:
        return tuples
    return tuples[nd_dominator_counts(tuples) < k]


def _hull_vertex_positions(points: np.ndarray) -> np.ndarray:
    """Hull vertex positions; every point when the hull is degenerate."""
    n, d = points.shape
    if n <= d:  # fewer points than a full-dimensional simplex
        return np.arange(n)
    if d == 2:
        from .hull import convex_hull_indices

        return convex_hull_indices(points)
    if ConvexHull is None:  # pragma: no cover - scipy is installed in CI
        return np.arange(n)
    try:
        return np.array(sorted(ConvexHull(points).vertices), dtype=np.int64)
    except QhullError:
        # Flat (lower-dimensional) point set: treat it as one layer.
        return np.arange(n)


@dataclass
class LayeredQueryStats:
    layers_visited: int = 0
    points_scored: int = 0


class LayeredTopKIndex:
    """Top-k index for ``d >= 2`` rank attributes and linear preferences.

    Build: K-dominance pruning, then convex-hull layer peeling of the
    survivors.  Query: merge the first ``min(k, n_layers)`` layers.
    Exact for every monotone linear preference (non-negative weights).
    """

    def __init__(self, tuples: NDTupleSet, k: int):
        if len(tuples) == 0:
            raise ConstructionError("cannot index an empty tuple set")
        if k < 1:
            raise ConstructionError(f"K must be a positive integer, got {k}")
        self.k_bound = k
        self.dominating = nd_dominating_set(tuples, k)
        self.layers: list[np.ndarray] = []
        remaining = np.arange(len(self.dominating))
        points = self.dominating.values
        while len(remaining):
            hull_local = _hull_vertex_positions(points[remaining])
            self.layers.append(remaining[hull_local])
            mask = np.ones(len(remaining), dtype=bool)
            mask[hull_local] = False
            remaining = remaining[mask]
        self.last_query = LayeredQueryStats()

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    def query(self, weights: Iterable[float], k: int) -> list[QueryResult]:
        """Exact top-k under non-negative ``weights`` (one per dimension)."""
        weights = np.asarray(list(weights), dtype=np.float64)
        if len(weights) != self.dominating.dimensions:
            raise QueryError(
                f"expected {self.dominating.dimensions} weights, "
                f"got {len(weights)}"
            )
        if (weights < 0).any() or not weights.any():
            raise QueryError("weights must be non-negative and not all zero")
        if k < 1:
            raise QueryError(f"k must be positive, got {k}")
        if k > self.k_bound:
            raise QueryError(
                f"k={k} exceeds the construction bound K={self.k_bound}"
            )
        stats = LayeredQueryStats()
        heap: list[tuple[float, int]] = []
        for depth, layer in enumerate(self.layers):
            if depth >= k and len(heap) >= k:
                break
            stats.layers_visited += 1
            stats.points_scored += len(layer)
            scores = self.dominating.values[layer] @ weights
            for position, score in zip(layer, scores):
                item = (float(score), -int(self.dominating.tids[position]))
                if len(heap) < k:
                    heapq.heappush(heap, item)
                elif item > heap[0]:
                    heapq.heappushpop(heap, item)
        self.last_query = stats
        ordered = sorted(heap, key=lambda item: (-item[0], -item[1]))
        return [QueryResult(-neg_tid, score) for score, neg_tid in ordered]


def topk_multiway_join_candidates(
    inputs: list[tuple[np.ndarray, np.ndarray]], k: int
) -> tuple[NDTupleSet, list[tuple[int, ...]]]:
    """Lemma 1 for a star equi-join of ``m >= 2`` keyed, ranked inputs.

    ``inputs`` is a list of ``(keys, ranks)`` pairs sharing a join key
    domain.  Within every key group each input is trimmed to its ``k``
    highest-ranked rows before forming the group's cross product, which
    preserves every top-k answer for every monotone linear preference:
    a dropped combination is dominated by at least ``k`` retained ones
    that improve a single coordinate.

    Returns the candidate set (one rank value per input) and, parallel
    to its tids, the contributing row ids per input.
    """
    if len(inputs) < 2:
        raise ConstructionError("a multiway join needs at least two inputs")
    if k < 1:
        raise ConstructionError(f"K must be a positive integer, got {k}")

    trimmed_per_input = []
    for keys, ranks in inputs:
        keys = np.asarray(keys)
        ranks = np.asarray(ranks, dtype=np.float64)
        groups: dict = {}
        for row, key in enumerate(keys):
            groups.setdefault(key, []).append(row)
        trimmed = {}
        for key, rows in groups.items():
            rows = np.asarray(rows, dtype=np.int64)
            order = np.lexsort((rows, -ranks[rows]))
            trimmed[key] = rows[order[:k]]
        trimmed_per_input.append((trimmed, ranks))

    shared_keys = set(trimmed_per_input[0][0])
    for trimmed, _ in trimmed_per_input[1:]:
        shared_keys &= set(trimmed)

    rows_out: list[tuple[int, ...]] = []
    values_out: list[list[float]] = []
    for key in sorted(shared_keys, key=repr):
        combos: list[tuple[tuple[int, ...], list[float]]] = [((), [])]
        for trimmed, ranks in trimmed_per_input:
            combos = [
                (ids + (int(row),), vals + [float(ranks[row])])
                for ids, vals in combos
                for row in trimmed[key]
            ]
        for ids, vals in combos:
            rows_out.append(ids)
            values_out.append(vals)
    if not rows_out:
        empty = np.empty((0, len(inputs)))
        return NDTupleSet(np.empty(0, dtype=np.int64), empty), []
    candidates = NDTupleSet(
        np.arange(len(rows_out), dtype=np.int64), np.asarray(values_out)
    )
    return candidates, rows_out
