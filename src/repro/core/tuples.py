"""Containers for join-result tuples carrying rank-value pairs.

All core algorithms operate on a column-oriented :class:`RankTupleSet`:
parallel NumPy arrays of tuple identifiers and the two rank values.  The
identifier is opaque to the index — for a join result it typically
encodes the RID pair of the joined base tuples (see
:mod:`repro.relalg.joins`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, NamedTuple

import numpy as np

from ..errors import ConstructionError

__all__ = ["RankTuple", "RankTupleSet"]


class RankTuple(NamedTuple):
    """One join-result tuple: identifier plus its two rank values."""

    tid: int
    s1: float
    s2: float


@dataclass(frozen=True)
class RankTupleSet:
    """An immutable column-store of ``(tid, s1, s2)`` tuples.

    Invariants enforced at construction: the three arrays are parallel,
    rank values are finite, and tuple identifiers are unique.
    """

    tids: np.ndarray
    s1: np.ndarray
    s2: np.ndarray

    def __post_init__(self) -> None:
        tids = np.ascontiguousarray(self.tids, dtype=np.int64)
        s1 = np.ascontiguousarray(self.s1, dtype=np.float64)
        s2 = np.ascontiguousarray(self.s2, dtype=np.float64)
        if not (len(tids) == len(s1) == len(s2)):
            raise ConstructionError(
                "tids, s1 and s2 must be parallel arrays; got lengths "
                f"{len(tids)}, {len(s1)}, {len(s2)}"
            )
        if len(s1) and not (np.isfinite(s1).all() and np.isfinite(s2).all()):
            raise ConstructionError("rank values must be finite")
        if len(tids) != len(np.unique(tids)):
            raise ConstructionError("tuple identifiers must be unique")
        object.__setattr__(self, "tids", tids)
        object.__setattr__(self, "s1", s1)
        object.__setattr__(self, "s2", s2)

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_tuples(cls, tuples: Iterable[RankTuple | tuple]) -> "RankTupleSet":
        """Build a set from an iterable of ``(tid, s1, s2)`` triples."""
        rows = list(tuples)
        if not rows:
            return cls.empty()
        tids, s1, s2 = zip(*rows)
        return cls(np.array(tids), np.array(s1), np.array(s2))

    @classmethod
    def from_pairs(cls, s1: np.ndarray, s2: np.ndarray) -> "RankTupleSet":
        """Build a set from rank-value arrays, assigning sequential tids."""
        s1 = np.asarray(s1, dtype=np.float64)
        return cls(np.arange(len(s1), dtype=np.int64), s1, s2)

    @classmethod
    def empty(cls) -> "RankTupleSet":
        return cls(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.float64),
        )

    # -- container protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self.tids)

    def __iter__(self) -> Iterator[RankTuple]:
        for tid, a, b in zip(self.tids, self.s1, self.s2):
            yield RankTuple(int(tid), float(a), float(b))

    def __getitem__(self, index) -> "RankTupleSet":
        """Positional selection; accepts anything NumPy indexing accepts."""
        return RankTupleSet(self.tids[index], self.s1[index], self.s2[index])

    def row(self, position: int) -> RankTuple:
        """The tuple at a given array position (not by tid)."""
        return RankTuple(
            int(self.tids[position]),
            float(self.s1[position]),
            float(self.s2[position]),
        )

    # -- operations ------------------------------------------------------

    def scores(self, p1: float, p2: float) -> np.ndarray:
        """Vectorized scores of every tuple under preference ``(p1, p2)``."""
        return p1 * self.s1 + p2 * self.s2

    def sorted_by(self, keys: np.ndarray, *, descending: bool = True) -> "RankTupleSet":
        """A copy ordered by an external key array (stable sort)."""
        order = np.argsort(keys, kind="stable")
        if descending:
            order = order[::-1]
        return self[order]

    def sort_for_sweep(self) -> "RankTupleSet":
        """Order used by the sweep start (angle 0): s1 desc, then s2 desc,
        then tid asc, so ties are broken by what happens just after the
        sweep leaves the s1-axis."""
        order = np.lexsort((self.tids, -self.s2, -self.s1))
        return self[order]

    def topk_at_angle(self, p1: float, p2: float, k: int) -> np.ndarray:
        """Positions of the top-``k`` tuples under ``(p1, p2)``.

        Ties are broken deterministically by (s1 desc, tid asc) so that
        independent evaluations agree.
        """
        scores = self.scores(p1, p2)
        order = np.lexsort((self.tids, -self.s1, -scores))
        return order[:k]

    def take_tids(self, tids: Iterable[int]) -> "RankTupleSet":
        """Subset by tuple identifier, in the order given."""
        index = {int(t): i for i, t in enumerate(self.tids)}
        positions = np.array([index[int(t)] for t in tids], dtype=np.int64)
        return self[positions]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RankTupleSet(n={len(self)})"
