"""Single-relation top-k selection — moved to :mod:`repro.relalg.topk`.

:class:`TopKSelectionIndex` binds the core index to the relational
layer's ``Relation``, so its implementation lives in ``relalg`` where
that dependency points downward.  This module keeps the historical
``repro.core.single`` import path alive; new code should import from
``repro.relalg``.
"""

from __future__ import annotations

import warnings

# Back-compat shim: the one deliberate upward import in ``core``, kept so
# published ``repro.core.single`` imports don't break.
from ..relalg.topk import TopKSelectionIndex  # rjilint: disable=RJI001

__all__ = ["TopKSelectionIndex"]

warnings.warn(
    "repro.core.single is deprecated; import TopKSelectionIndex from "
    "repro.relalg (see docs/API.md, deprecation policy)",
    DeprecationWarning,
    stacklevel=2,
)
