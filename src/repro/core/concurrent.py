"""A thread-safe facade over a maintained Ranked Join Index.

The core index is a plain in-memory structure; incremental maintenance
mutates its region list in place.  :class:`ConcurrentRankedJoinIndex`
adds a readers-writer lock so many query threads proceed concurrently
while inserts/deletes/rebuilds take exclusive ownership — the standard
discipline a database system would put around a shared index.

Writer preference: once a writer is waiting, new readers block, so
maintenance cannot starve under a heavy query load.

Queries optionally take a ``deadline`` (a
:class:`~repro.core.deadline.Deadline` or seconds): the read-lock wait
and the wrapped query share one cooperative deadline, so a query stuck
behind a long rebuild fails fast with
:class:`~repro.errors.QueryTimeoutError` instead of queueing forever.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Iterable, Sequence

from ..errors import LockDisciplineError, MaintenanceError, QueryTimeoutError
from .deadline import Deadline, DeadlineLike
from .delta import DeltaStore, SupportsWal
from .index import QueryResult, RankedJoinIndex
from .maintenance import delete_tuple, insert_tuple
from .scoring import PreferenceLike
from .tuples import RankTuple, RankTupleSet

__all__ = ["ReadWriteLock", "ConcurrentRankedJoinIndex"]


class ReadWriteLock:
    """A writer-preferring readers-writer lock."""

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self, timeout: float | None = None) -> bool:
        """Acquire shared ownership; returns False on timeout.

        ``timeout=None`` blocks indefinitely (and always returns True),
        preserving the original semantics for existing callers.  The
        timeout bounds the *total* wait across wakeups, not each one.
        """
        with self._condition:
            if timeout is None:
                while self._writer_active or self._writers_waiting:
                    self._condition.wait()
                self._readers += 1
                return True
            expires = time.monotonic() + timeout
            while self._writer_active or self._writers_waiting:
                remaining = expires - time.monotonic()
                if remaining <= 0 or not self._condition.wait(remaining):
                    return False
            self._readers += 1
            return True

    def release_read(self) -> None:
        with self._condition:
            if self._readers <= 0:
                raise LockDisciplineError(
                    "release_read without a matching successful acquire_read"
                )
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            while self._writer_active or self._readers:
                self._condition.wait()
            self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._condition:
            if not self._writer_active:
                raise LockDisciplineError(
                    "release_write without a matching acquire_write"
                )
            self._writer_active = False
            self._condition.notify_all()

    class _ReadGuard:
        def __init__(self, lock: "ReadWriteLock"):
            self._lock = lock

        def __enter__(self):
            self._lock.acquire_read()

        def __exit__(self, *exc):
            self._lock.release_read()
            return False

    class _WriteGuard:
        def __init__(self, lock: "ReadWriteLock"):
            self._lock = lock

        def __enter__(self):
            self._lock.acquire_write()

        def __exit__(self, *exc):
            self._lock.release_write()
            return False

    def reading(self) -> "_ReadGuard":
        return self._ReadGuard(self)

    def writing(self) -> "_WriteGuard":
        return self._WriteGuard(self)


class ConcurrentRankedJoinIndex:
    """Shared-read / exclusive-write wrapper around a RankedJoinIndex."""

    def __init__(
        self,
        index: RankedJoinIndex,
        *,
        wal: SupportsWal | None = None,
        delta_threshold: int = 64,
        pool: Iterable[RankTuple] | None = None,
        build_options: dict | None = None,
    ):
        self._index = index
        self._lock = ReadWriteLock()
        # The construction bound is immutable across rebuilds (rebuild()
        # reuses it), so it is cached here and served without the lock.
        self._k_bound = index.k_bound
        # WAL-then-delta mode: writes commit to the log, land in a
        # DeltaStore merged by every query, and a *background* thread
        # compacts the delta into a fresh base once it grows past
        # ``delta_threshold`` — readers keep draining on the old store
        # while the replacement builds; only the swap takes the write
        # lock.  ``pool`` seeds the full live tuple set compaction
        # rebuilds from; it defaults to the index's dominating set,
        # which is only complete when the index was built unpruned.
        self._wal = wal
        self._delta_threshold = max(1, delta_threshold)
        self._build_options = dict(build_options or {})
        self._delta: DeltaStore | None = None
        self._pool: dict[int, RankTuple] = {}
        self._compacting = False
        self._compaction_thread: threading.Thread | None = None
        if wal is not None:
            self._delta = DeltaStore()
            index.attach_delta(self._delta)
            source = pool if pool is not None else index.dominating
            self._pool = {
                int(t.tid): RankTuple(int(t.tid), float(t.s1), float(t.s2))
                for t in source
            }

    @classmethod
    def build(
        cls,
        tuples: RankTupleSet | Iterable[RankTuple],
        k: int,
        *,
        wal: SupportsWal | None = None,
        delta_threshold: int = 64,
        **options,
    ) -> "ConcurrentRankedJoinIndex":
        """Build the wrapped index; ``options`` are forwarded verbatim to
        :meth:`RankedJoinIndex.build` (including the ``workers`` and
        ``block_rows`` construction-tuning knobs).  Passing ``wal=``
        enables the durable write path; the full input tuple set becomes
        the live pool that background compactions rebuild from."""
        if not isinstance(tuples, RankTupleSet):
            tuples = RankTupleSet.from_tuples(tuples)
        index = RankedJoinIndex.build(tuples, k, **options)
        return cls(
            index,
            wal=wal,
            delta_threshold=delta_threshold,
            pool=tuples if wal is not None else None,
            build_options=options,
        )

    # -- readers -----------------------------------------------------------

    def _acquire_read(self, deadline: Deadline | None) -> None:
        """Take the read lock within the deadline's remaining budget."""
        if deadline is None:
            self._lock.acquire_read()
            return
        remaining = deadline.remaining()
        if remaining <= 0 or not self._lock.acquire_read(remaining):
            raise QueryTimeoutError(
                "query deadline expired while waiting for the read lock"
            )

    def query(
        self,
        preference: PreferenceLike,
        k: int,
        *,
        deadline: DeadlineLike = None,
    ) -> list[QueryResult]:
        """Top-k under ``preference``; ``deadline`` (a
        :class:`~repro.core.deadline.Deadline` or seconds) covers the
        read-lock wait *and* the query itself, raising
        :class:`~repro.errors.QueryTimeoutError` once exceeded."""
        deadline = Deadline.of(deadline)
        self._acquire_read(deadline)
        try:
            return self._index.query(preference, k, deadline=deadline)
        finally:
            self._lock.release_read()

    def query_batch(
        self,
        preferences: Sequence[PreferenceLike],
        k: int,
        *,
        deadline: DeadlineLike = None,
    ) -> list[list[QueryResult]]:
        deadline = Deadline.of(deadline)
        self._acquire_read(deadline)
        try:
            return self._index.query_batch(preferences, k, deadline=deadline)
        finally:
            self._lock.release_read()

    @property
    def k_bound(self) -> int:
        return self._k_bound

    @property
    def k_effective(self) -> int:
        with self._lock.reading():
            if self._delta is not None:
                return max(
                    0, self._index.k_effective - self._delta.n_tombstones
                )
            return self._index.k_effective

    @property
    def n_regions(self) -> int:
        with self._lock.reading():
            return self._index.n_regions

    def snapshot_stats(self):
        with self._lock.reading():
            return self._index.stats

    # -- writers ----------------------------------------------------------------

    def insert(self, tuple_: RankTuple) -> bool:
        """Add a tuple under exclusive ownership.

        In WAL mode the records reach durable storage (append + commit,
        i.e. fsync) *before* the delta buffers the tuple — the commit
        return is the acknowledgement point, so an acknowledged insert
        survives any later crash."""
        with self._lock.writing():
            wal, delta = self._wal, self._delta
            if wal is None or delta is None:
                return insert_tuple(self._index, tuple_)
            tid = int(tuple_.tid)
            if tid in self._pool:
                raise MaintenanceError(f"tuple id {tid} already live")
            candidate = RankTuple(tid, float(tuple_.s1), float(tuple_.s2))
            if not (
                math.isfinite(candidate.s1) and math.isfinite(candidate.s2)
            ):
                raise MaintenanceError("rank values must be finite")
            lsn = wal.append_insert(tid, candidate.s1, candidate.s2)
            wal.commit()
            delta.insert(candidate, lsn)
            self._pool[tid] = candidate
            self._maybe_compact_locked()
            return True

    def delete(self, tid: int) -> int:
        """Remove a tuple; returns the effective bound that remains."""
        with self._lock.writing():
            wal, delta = self._wal, self._delta
            if wal is None or delta is None:
                return delete_tuple(self._index, tid)
            tid = int(tid)
            if tid not in self._pool:
                raise MaintenanceError(f"tuple id {tid} is not live")
            if len(self._pool) == 1:
                raise MaintenanceError(
                    "deleting the last live tuple; an index cannot be empty"
                )
            lsn = wal.append_delete(tid)
            wal.commit()
            del self._pool[tid]
            delta.delete(tid, lsn)
            self._maybe_compact_locked()
            return max(0, self._index.k_effective - delta.n_tombstones)

    # -- background compaction --------------------------------------------------

    def _maybe_compact_locked(self) -> None:
        """Kick off a background compaction if the delta grew too fat.

        Caller holds the write lock.  The snapshot (live pool copy +
        current WAL position) is taken here, under the lock, so the
        builder thread never touches shared mutable state."""
        delta, wal = self._delta, self._wal
        if delta is None or wal is None or self._compacting:
            return
        if (
            delta.n_ops < self._delta_threshold
            and delta.n_tombstones * 2 < self._index.k_effective
        ):
            return
        snapshot = sorted(self._pool.values())
        snapshot_lsn = wal.last_lsn
        self._compacting = True
        worker = threading.Thread(
            target=self._compact_from,
            args=(snapshot, snapshot_lsn),
            name="rji-compaction",
            daemon=True,
        )
        self._compaction_thread = worker
        worker.start()

    def _compact_from(
        self, snapshot: list[RankTuple], snapshot_lsn: int
    ) -> None:
        """Build a fresh base from ``snapshot`` and swap it in.

        Runs on the compaction thread.  The build happens outside any
        lock (old readers drain on the old store); the swap takes the
        write lock and is O(1): entries the delta absorbed after the
        snapshot stay buffered via :meth:`DeltaStore.clear_upto`."""
        try:
            fresh = RankedJoinIndex.build(
                RankTupleSet.from_tuples(snapshot),
                self._k_bound,
                **self._build_options,
            )
            with self._lock.writing():
                delta = self._delta
                if delta is not None:
                    delta.clear_upto(snapshot_lsn)
                    fresh.attach_delta(delta)
                self._index = fresh
        finally:
            with self._lock.writing():
                self._compacting = False

    def compact(self) -> None:
        """Synchronously merge the delta into a fresh base index."""
        self.drain_compaction()
        with self._lock.writing():
            wal, delta = self._wal, self._delta
            if wal is None or delta is None or delta.is_empty:
                return
            snapshot = sorted(self._pool.values())
            snapshot_lsn = wal.last_lsn
            # Claim the compaction slot before dropping the lock so a
            # concurrent writer cannot start a background run meanwhile.
            self._compacting = True
        self._compact_from(snapshot, snapshot_lsn)

    def drain_compaction(self, timeout: float | None = None) -> bool:
        """Wait for an in-flight background compaction; True when idle."""
        worker = self._compaction_thread
        if worker is not None and worker.is_alive():
            worker.join(timeout)
            return not worker.is_alive()
        return True

    @property
    def delta(self) -> DeltaStore | None:
        """The live write buffer (``None`` outside WAL mode)."""
        with self._lock.reading():
            return self._delta

    @property
    def n_live(self) -> int:
        with self._lock.reading():
            return len(self._pool)

    def rebuild(
        self, tuples: RankTupleSet | Iterable[RankTuple], **options
    ) -> None:
        """Replace the underlying index atomically (restores slack).

        The build runs *outside* the write lock, so readers keep being
        served from the old index while the replacement is constructed —
        pass ``workers=N`` to speed the event pass up without extending
        the swap's exclusive section, which stays O(1).  In WAL mode the
        given tuples become the new live pool and the delta restarts
        empty (an explicit administrative reset, not a logged write).
        """
        if not isinstance(tuples, RankTupleSet):
            tuples = RankTupleSet.from_tuples(tuples)
        fresh = RankedJoinIndex.build(tuples, self._k_bound, **options)
        with self._lock.writing():
            if self._wal is not None:
                delta = DeltaStore()
                fresh.attach_delta(delta)
                self._delta = delta
                self._pool = {
                    int(t.tid): RankTuple(
                        int(t.tid), float(t.s1), float(t.s2)
                    )
                    for t in tuples
                }
            self._index = fresh
