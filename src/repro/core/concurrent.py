"""A thread-safe facade over a maintained Ranked Join Index.

The core index is a plain in-memory structure; incremental maintenance
mutates its region list in place.  :class:`ConcurrentRankedJoinIndex`
adds a readers-writer lock so many query threads proceed concurrently
while inserts/deletes/rebuilds take exclusive ownership — the standard
discipline a database system would put around a shared index.

Writer preference: once a writer is waiting, new readers block, so
maintenance cannot starve under a heavy query load.

Queries optionally take a ``deadline`` (a
:class:`~repro.core.deadline.Deadline` or seconds): the read-lock wait
and the wrapped query share one cooperative deadline, so a query stuck
behind a long rebuild fails fast with
:class:`~repro.errors.QueryTimeoutError` instead of queueing forever.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, Sequence

from ..errors import LockDisciplineError, QueryTimeoutError
from .deadline import Deadline, DeadlineLike
from .index import QueryResult, RankedJoinIndex
from .maintenance import delete_tuple, insert_tuple
from .scoring import PreferenceLike
from .tuples import RankTuple, RankTupleSet

__all__ = ["ReadWriteLock", "ConcurrentRankedJoinIndex"]


class ReadWriteLock:
    """A writer-preferring readers-writer lock."""

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self, timeout: float | None = None) -> bool:
        """Acquire shared ownership; returns False on timeout.

        ``timeout=None`` blocks indefinitely (and always returns True),
        preserving the original semantics for existing callers.  The
        timeout bounds the *total* wait across wakeups, not each one.
        """
        with self._condition:
            if timeout is None:
                while self._writer_active or self._writers_waiting:
                    self._condition.wait()
                self._readers += 1
                return True
            expires = time.monotonic() + timeout
            while self._writer_active or self._writers_waiting:
                remaining = expires - time.monotonic()
                if remaining <= 0 or not self._condition.wait(remaining):
                    return False
            self._readers += 1
            return True

    def release_read(self) -> None:
        with self._condition:
            if self._readers <= 0:
                raise LockDisciplineError(
                    "release_read without a matching successful acquire_read"
                )
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            while self._writer_active or self._readers:
                self._condition.wait()
            self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._condition:
            if not self._writer_active:
                raise LockDisciplineError(
                    "release_write without a matching acquire_write"
                )
            self._writer_active = False
            self._condition.notify_all()

    class _ReadGuard:
        def __init__(self, lock: "ReadWriteLock"):
            self._lock = lock

        def __enter__(self):
            self._lock.acquire_read()

        def __exit__(self, *exc):
            self._lock.release_read()
            return False

    class _WriteGuard:
        def __init__(self, lock: "ReadWriteLock"):
            self._lock = lock

        def __enter__(self):
            self._lock.acquire_write()

        def __exit__(self, *exc):
            self._lock.release_write()
            return False

    def reading(self) -> "_ReadGuard":
        return self._ReadGuard(self)

    def writing(self) -> "_WriteGuard":
        return self._WriteGuard(self)


class ConcurrentRankedJoinIndex:
    """Shared-read / exclusive-write wrapper around a RankedJoinIndex."""

    def __init__(self, index: RankedJoinIndex):
        self._index = index
        self._lock = ReadWriteLock()
        # The construction bound is immutable across rebuilds (rebuild()
        # reuses it), so it is cached here and served without the lock.
        self._k_bound = index.k_bound

    @classmethod
    def build(
        cls, tuples: RankTupleSet | Iterable[RankTuple], k: int, **options
    ) -> "ConcurrentRankedJoinIndex":
        """Build the wrapped index; ``options`` are forwarded verbatim to
        :meth:`RankedJoinIndex.build` (including the ``workers`` and
        ``block_rows`` construction-tuning knobs)."""
        return cls(RankedJoinIndex.build(tuples, k, **options))

    # -- readers -----------------------------------------------------------

    def _acquire_read(self, deadline: Deadline | None) -> None:
        """Take the read lock within the deadline's remaining budget."""
        if deadline is None:
            self._lock.acquire_read()
            return
        remaining = deadline.remaining()
        if remaining <= 0 or not self._lock.acquire_read(remaining):
            raise QueryTimeoutError(
                "query deadline expired while waiting for the read lock"
            )

    def query(
        self,
        preference: PreferenceLike,
        k: int,
        *,
        deadline: DeadlineLike = None,
    ) -> list[QueryResult]:
        """Top-k under ``preference``; ``deadline`` (a
        :class:`~repro.core.deadline.Deadline` or seconds) covers the
        read-lock wait *and* the query itself, raising
        :class:`~repro.errors.QueryTimeoutError` once exceeded."""
        deadline = Deadline.of(deadline)
        self._acquire_read(deadline)
        try:
            return self._index.query(preference, k, deadline=deadline)
        finally:
            self._lock.release_read()

    def query_batch(
        self,
        preferences: Sequence[PreferenceLike],
        k: int,
        *,
        deadline: DeadlineLike = None,
    ) -> list[list[QueryResult]]:
        deadline = Deadline.of(deadline)
        self._acquire_read(deadline)
        try:
            return self._index.query_batch(preferences, k, deadline=deadline)
        finally:
            self._lock.release_read()

    @property
    def k_bound(self) -> int:
        return self._k_bound

    @property
    def k_effective(self) -> int:
        with self._lock.reading():
            return self._index.k_effective

    @property
    def n_regions(self) -> int:
        with self._lock.reading():
            return self._index.n_regions

    def snapshot_stats(self):
        with self._lock.reading():
            return self._index.stats

    # -- writers ----------------------------------------------------------------

    def insert(self, tuple_: RankTuple) -> bool:
        with self._lock.writing():
            return insert_tuple(self._index, tuple_)

    def delete(self, tid: int) -> int:
        with self._lock.writing():
            return delete_tuple(self._index, tid)

    def rebuild(
        self, tuples: RankTupleSet | Iterable[RankTuple], **options
    ) -> None:
        """Replace the underlying index atomically (restores slack).

        The build runs *outside* the write lock, so readers keep being
        served from the old index while the replacement is constructed —
        pass ``workers=N`` to speed the event pass up without extending
        the swap's exclusive section, which stays O(1).
        """
        fresh = RankedJoinIndex.build(tuples, self._k_bound, **options)
        with self._lock.writing():
            self._index = fresh
