"""A managed index: maintenance plus an automatic rebuild policy.

:class:`ManagedRankedJoinIndex` owns the full live tuple pool alongside
the index, applies inserts/deletes through
:mod:`repro.core.maintenance`, and rebuilds from the pool once lazy
deletions have eaten the guarantee down to a configurable floor — the
build-fast/degrade-slowly lifecycle a deployment would actually run.

Correctness note on deletions: deleting an indexed tuple lowers
``k_effective`` by one (see :mod:`repro.core.maintenance`); deleting a
pool tuple that was K-dominated changes nothing — after ``r`` deletions
it is still dominated by at least ``K - r`` live tuples, so it can never
enter a top-(K-r) answer, which is exactly the degraded guarantee.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..errors import MaintenanceError
from .deadline import DeadlineLike
from .delta import DeltaStore, SupportsWal
from .index import QueryResult, RankedJoinIndex
from .maintenance import delete_tuple, insert_tuple
from .scoring import PreferenceLike
from .tuples import RankTuple, RankTupleSet

__all__ = ["MaintenanceLog", "ManagedRankedJoinIndex"]


@dataclass
class MaintenanceLog:
    """Lifetime counters of a managed index."""

    inserts_applied: int = 0
    inserts_pruned: int = 0
    deletes: int = 0
    rebuilds: int = 0
    events: list[str] = field(default_factory=list)


class ManagedRankedJoinIndex:
    """Index + tuple pool + auto-rebuild once the guarantee degrades."""

    def __init__(
        self,
        tuples: RankTupleSet | Iterable[RankTuple],
        k: int,
        *,
        min_effective_k: int | None = None,
        wal: SupportsWal | None = None,
        delta_threshold: int = 64,
        **build_options,
    ):
        # build_options are forwarded verbatim to RankedJoinIndex.build
        # on the initial build AND every auto-rebuild, so construction
        # tuning (workers=, block_rows=, merge_slack=, ...) sticks for
        # the lifetime of the managed index.
        if not isinstance(tuples, RankTupleSet):
            tuples = RankTupleSet.from_tuples(tuples)
        self.k_bound = k
        self._build_options = dict(build_options)
        self.min_effective_k = (
            min_effective_k
            if min_effective_k is not None
            else max(1, math.ceil(k / 2))
        )
        if not 1 <= self.min_effective_k <= k:
            raise MaintenanceError(
                f"min_effective_k must be in [1, {k}], got {self.min_effective_k}"
            )
        self._pool: dict[int, RankTuple] = {t.tid: t for t in tuples}
        self.log = MaintenanceLog()
        self._index = RankedJoinIndex.build(tuples, k, **build_options)
        # WAL-then-delta mode (wal= is any SupportsWal, in practice
        # repro.storage.wal.WriteAheadLog): writes append + commit to
        # the log first, then land in a DeltaStore that queries merge,
        # and the base store stays immutable until compact().  Without a
        # wal the classic in-place maintenance path is unchanged.
        self._wal = wal
        self._delta_threshold = max(1, delta_threshold)
        self._delta: DeltaStore | None = None
        if wal is not None:
            self._delta = DeltaStore()
            self._index.attach_delta(self._delta)

    # -- queries -----------------------------------------------------------

    def query(
        self,
        preference: PreferenceLike,
        k: int,
        *,
        deadline: DeadlineLike = None,
    ) -> list[QueryResult]:
        """Top-k over the current live population.

        ``deadline`` (a :class:`~repro.core.deadline.Deadline` or
        seconds) arms a cooperative per-query deadline;
        :class:`~repro.errors.QueryTimeoutError` is raised past it.
        """
        return self._index.query(preference, k, deadline=deadline)

    def query_batch(
        self,
        preferences: Sequence[PreferenceLike],
        k: int,
        *,
        deadline: DeadlineLike = None,
    ) -> list[list[QueryResult]]:
        return self._index.query_batch(preferences, k, deadline=deadline)

    @property
    def k_effective(self) -> int:
        if self._delta is not None:
            return max(0, self._index.k_effective - self._delta.n_tombstones)
        return self._index.k_effective

    @property
    def n_live(self) -> int:
        """Number of live tuples in the pool."""
        return len(self._pool)

    @property
    def index(self) -> RankedJoinIndex:
        """The currently active underlying index."""
        return self._index

    @property
    def delta(self) -> DeltaStore | None:
        """The live write buffer (``None`` outside WAL mode)."""
        return self._delta

    # -- maintenance -------------------------------------------------------

    def insert(self, tuple_: RankTuple) -> bool:
        """Add a tuple; returns whether the index itself changed.

        In WAL mode the records are committed to the log *before* any
        in-memory state changes; the delta buffers the tuple and every
        query merges it, so the return value is always ``True``.
        """
        tid = int(tuple_.tid)
        if tid in self._pool:
            raise MaintenanceError(f"tuple id {tid} already live")
        if self._wal is not None and self._delta is not None:
            candidate = RankTuple(tid, float(tuple_.s1), float(tuple_.s2))
            if not (
                math.isfinite(candidate.s1) and math.isfinite(candidate.s2)
            ):
                raise MaintenanceError("rank values must be finite")
            lsn = self._wal.append_insert(tid, candidate.s1, candidate.s2)
            self._wal.commit()
            self._delta.insert(candidate, lsn)
            self._pool[tid] = candidate
            self.log.inserts_applied += 1
            self._maybe_compact()
            return True
        self._pool[tid] = tuple_
        changed = insert_tuple(self._index, tuple_)
        if changed:
            self.log.inserts_applied += 1
        else:
            self.log.inserts_pruned += 1
        return changed

    def delete(self, tid: int) -> int:
        """Remove a tuple; returns the effective bound that remains.

        Both maintenance modes return the post-delete ``k_effective`` —
        the same contract as
        :meth:`repro.core.concurrent.ConcurrentRankedJoinIndex.delete` —
        so callers can watch the guarantee degrade without a second
        call.
        """
        tid = int(tid)
        if tid not in self._pool:
            raise MaintenanceError(f"tuple id {tid} is not live")
        if self._wal is not None and self._delta is not None:
            lsn = self._wal.append_delete(tid)
            self._wal.commit()
            del self._pool[tid]
            self._delta.delete(tid, lsn)
            self.log.deletes += 1
            self._maybe_compact()
            return self.k_effective
        del self._pool[tid]
        self.log.deletes += 1
        if tid in self._index._position_of:
            delete_tuple(self._index, tid)
        if self._index.k_effective < self.min_effective_k:
            self.rebuild(reason="effective bound fell below the floor")
        return self.k_effective

    def _maybe_compact(self) -> None:
        delta = self._delta
        if delta is None:
            return
        if (
            delta.n_ops >= self._delta_threshold
            or delta.n_tombstones * 2 >= self._index.k_effective
        ):
            self.compact()

    def compact(self) -> None:
        """Merge the delta into a fresh base index and start it empty.

        The managed index keeps no durable snapshot of its own, so the
        WAL is *not* checkpointed here — replaying the full log over the
        original tuple set reconstructs this state after a crash.
        Durable checkpoint/prune lives in
        :class:`repro.storage.durable.DurableRankedJoinIndex`.
        """
        if self._delta is None:
            return
        tuples = RankTupleSet.from_tuples(self._pool.values())
        fresh = RankedJoinIndex.build(
            tuples, self.k_bound, **self._build_options
        )
        self._delta = DeltaStore()
        fresh.attach_delta(self._delta)
        self._index = fresh
        self.log.rebuilds += 1
        self.log.events.append(f"compact; pool={len(self._pool)}")

    def rebuild(self, *, reason: str = "requested") -> None:
        """Rebuild the index from the live pool, restoring full slack."""
        tuples = RankTupleSet.from_tuples(self._pool.values())
        self._index = RankedJoinIndex.build(
            tuples, self.k_bound, **self._build_options
        )
        if self._delta is not None:
            self._delta = DeltaStore()
            self._index.attach_delta(self._delta)
        self.log.rebuilds += 1
        self.log.events.append(f"rebuild ({reason}); pool={len(self._pool)}")

    def check_invariants(self) -> None:
        """Index structure valid and every indexed tuple is live.

        In WAL mode a base tuple may be dead *if* a tombstone hides it —
        the delta is part of the logical state — and every buffered
        insert must be live."""
        self._index.check_invariants()
        delta = self._delta
        for tid in self._index.dominating.tids:
            tid = int(tid)
            if tid not in self._pool and (
                delta is None or not delta.tombstoned(tid)
            ):
                raise MaintenanceError(
                    f"indexed tuple {tid} is not in the live pool"
                )
        if delta is not None:
            for pending in delta.pending_inserts():
                if pending.tid not in self._pool:
                    raise MaintenanceError(
                        f"buffered insert {pending.tid} is not in the live pool"
                    )
