"""A managed index: maintenance plus an automatic rebuild policy.

:class:`ManagedRankedJoinIndex` owns the full live tuple pool alongside
the index, applies inserts/deletes through
:mod:`repro.core.maintenance`, and rebuilds from the pool once lazy
deletions have eaten the guarantee down to a configurable floor — the
build-fast/degrade-slowly lifecycle a deployment would actually run.

Correctness note on deletions: deleting an indexed tuple lowers
``k_effective`` by one (see :mod:`repro.core.maintenance`); deleting a
pool tuple that was K-dominated changes nothing — after ``r`` deletions
it is still dominated by at least ``K - r`` live tuples, so it can never
enter a top-(K-r) answer, which is exactly the degraded guarantee.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..errors import MaintenanceError
from .deadline import DeadlineLike
from .index import QueryResult, RankedJoinIndex
from .maintenance import delete_tuple, insert_tuple
from .scoring import PreferenceLike
from .tuples import RankTuple, RankTupleSet

__all__ = ["MaintenanceLog", "ManagedRankedJoinIndex"]


@dataclass
class MaintenanceLog:
    """Lifetime counters of a managed index."""

    inserts_applied: int = 0
    inserts_pruned: int = 0
    deletes: int = 0
    rebuilds: int = 0
    events: list[str] = field(default_factory=list)


class ManagedRankedJoinIndex:
    """Index + tuple pool + auto-rebuild once the guarantee degrades."""

    def __init__(
        self,
        tuples: RankTupleSet | Iterable[RankTuple],
        k: int,
        *,
        min_effective_k: int | None = None,
        **build_options,
    ):
        # build_options are forwarded verbatim to RankedJoinIndex.build
        # on the initial build AND every auto-rebuild, so construction
        # tuning (workers=, block_rows=, merge_slack=, ...) sticks for
        # the lifetime of the managed index.
        if not isinstance(tuples, RankTupleSet):
            tuples = RankTupleSet.from_tuples(tuples)
        self.k_bound = k
        self._build_options = dict(build_options)
        self.min_effective_k = (
            min_effective_k
            if min_effective_k is not None
            else max(1, math.ceil(k / 2))
        )
        if not 1 <= self.min_effective_k <= k:
            raise MaintenanceError(
                f"min_effective_k must be in [1, {k}], got {self.min_effective_k}"
            )
        self._pool: dict[int, RankTuple] = {t.tid: t for t in tuples}
        self.log = MaintenanceLog()
        self._index = RankedJoinIndex.build(tuples, k, **build_options)

    # -- queries -----------------------------------------------------------

    def query(
        self,
        preference: PreferenceLike,
        k: int,
        *,
        deadline: DeadlineLike = None,
    ) -> list[QueryResult]:
        """Top-k over the current live population.

        ``deadline`` (a :class:`~repro.core.deadline.Deadline` or
        seconds) arms a cooperative per-query deadline;
        :class:`~repro.errors.QueryTimeoutError` is raised past it.
        """
        return self._index.query(preference, k, deadline=deadline)

    def query_batch(
        self,
        preferences: Sequence[PreferenceLike],
        k: int,
        *,
        deadline: DeadlineLike = None,
    ) -> list[list[QueryResult]]:
        return self._index.query_batch(preferences, k, deadline=deadline)

    @property
    def k_effective(self) -> int:
        return self._index.k_effective

    @property
    def n_live(self) -> int:
        """Number of live tuples in the pool."""
        return len(self._pool)

    @property
    def index(self) -> RankedJoinIndex:
        """The currently active underlying index."""
        return self._index

    # -- maintenance -------------------------------------------------------

    def insert(self, tuple_: RankTuple) -> bool:
        """Add a tuple; returns whether the index itself changed."""
        tid = int(tuple_.tid)
        if tid in self._pool:
            raise MaintenanceError(f"tuple id {tid} already live")
        self._pool[tid] = tuple_
        changed = insert_tuple(self._index, tuple_)
        if changed:
            self.log.inserts_applied += 1
        else:
            self.log.inserts_pruned += 1
        return changed

    def delete(self, tid: int) -> None:
        """Remove a tuple, rebuilding if the guarantee fell too far."""
        tid = int(tid)
        if tid not in self._pool:
            raise MaintenanceError(f"tuple id {tid} is not live")
        del self._pool[tid]
        self.log.deletes += 1
        if tid in self._index._position_of:
            delete_tuple(self._index, tid)
        if self._index.k_effective < self.min_effective_k:
            self.rebuild(reason="effective bound fell below the floor")

    def rebuild(self, *, reason: str = "requested") -> None:
        """Rebuild the index from the live pool, restoring full slack."""
        tuples = RankTupleSet.from_tuples(self._pool.values())
        self._index = RankedJoinIndex.build(
            tuples, self.k_bound, **self._build_options
        )
        self.log.rebuilds += 1
        self.log.events.append(f"rebuild ({reason}); pool={len(self._pool)}")

    def check_invariants(self) -> None:
        """Index structure valid and every indexed tuple is live."""
        self._index.check_invariants()
        for tid in self._index.dominating.tids:
            if int(tid) not in self._pool:
                raise MaintenanceError(
                    f"indexed tuple {int(tid)} is not in the live pool"
                )
