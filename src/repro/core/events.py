"""Separating-vector event generation for the ConstructRJI sweep.

ConstructRJI (Section 6) considers every pair of dominating-set tuples
and computes its *separating point* — the sweep angle at which the two
tuples exchange relative order (Lemma 4).  Pairs in which one tuple
weakly dominates the other never swap inside the sweep interval and
produce no event.

The all-pairs computation is the asymptotically dominant part of index
construction (``O(|D_K|^2)``), so it is vectorized with NumPy and runs
in row blocks to bound peak memory: a block of ``B`` rows against ``n``
columns allocates ``O(B * n)`` temporaries.  Blocks are independent of
one another, so ``workers > 1`` computes them on a thread pool — NumPy
releases the GIL inside the large elementwise kernels — while the merge
always happens in block order and the final sort is a total order over
``(angle, first, second)``, making the result identical for every
worker count and block partition.  Events are returned sorted by angle,
matching the order in which the sweep consumes them.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..errors import ConstructionError
from ..obs import NULL_RECORDER, Recorder
from .tuples import RankTupleSet

__all__ = ["SeparatingEvents", "separating_events"]


@dataclass(frozen=True)
class SeparatingEvents:
    """All separating events of a tuple set, sorted by angle.

    ``angles[m]`` is the separating point of the pair at array positions
    ``(first[m], second[m])`` of the originating :class:`RankTupleSet`.
    ``pairs_considered`` is the total number of pairs examined, including
    those that produced no event (used by construction-cost reporting).
    """

    angles: np.ndarray
    first: np.ndarray
    second: np.ndarray
    pairs_considered: int

    def __len__(self) -> int:
        return len(self.angles)


def _block_events(
    x: np.ndarray, y: np.ndarray, n: int, start: int, stop: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Separating events of rows ``[start, stop)`` against all columns.

    Pure function of its arguments (reads the shared score arrays, writes
    nothing), so blocks can run concurrently in any order.
    """
    rows = np.arange(start, stop)
    # Pairwise differences of rows [start, stop) against all columns;
    # only the strict upper triangle (j > i) is kept.
    dx = x[rows, None] - x[None, :]
    dy = y[rows, None] - y[None, :]
    upper = np.arange(n)[None, :] > rows[:, None]
    # A separating point exists iff dx and dy have strictly opposite
    # signs; then tan(angle) = -dx/dy is positive.
    crossing = upper & ((dx > 0) != (dy > 0)) & (dx != 0) & (dy != 0)
    if not crossing.any():
        return None
    row_idx, col_idx = np.nonzero(crossing)
    ratio = -dx[row_idx, col_idx] / dy[row_idx, col_idx]
    return (
        np.arctan(ratio),
        rows[row_idx].astype(np.int64),
        col_idx.astype(np.int64),
    )


def separating_events(
    tuples: RankTupleSet,
    *,
    block_rows: int = 512,
    workers: int = 1,
    recorder: Recorder = NULL_RECORDER,
) -> SeparatingEvents:
    """Compute every pairwise separating point of ``tuples``.

    Peak additional memory is ``O(block_rows * n)`` per in-flight block
    for the pairwise difference temporaries plus the event output itself
    (worst case one event per pair, i.e. ``n*(n-1)/2`` — reached when no
    tuple dominates another, exactly the regime the dominating set lives
    in).  ``workers > 1`` evaluates up to that many row blocks
    concurrently; results are bit-identical to the sequential run
    because blocks are merged in block order and the final sort key
    ``(angle, first, second)`` is a total order over distinct pairs.
    """
    if block_rows < 1:
        raise ConstructionError(
            f"block_rows must be a positive integer, got {block_rows}"
        )
    if workers < 1:
        raise ConstructionError(
            f"workers must be a positive integer, got {workers}"
        )
    n = len(tuples)
    if n < 2:
        empty = np.empty(0)
        return SeparatingEvents(
            empty, empty.astype(np.int64), empty.astype(np.int64), 0
        )

    x = tuples.s1
    y = tuples.s2
    starts = range(0, n - 1, block_rows)
    spans = [(start, min(start + block_rows, n - 1)) for start in starts]

    if workers > 1 and len(spans) > 1:
        with ThreadPoolExecutor(
            max_workers=min(workers, len(spans))
        ) as pool:
            # map() yields in submission (block) order regardless of
            # completion order, keeping the merge deterministic.
            blocks = list(
                pool.map(
                    lambda span: _block_events(x, y, n, span[0], span[1]),
                    spans,
                )
            )
    else:
        blocks = [_block_events(x, y, n, start, stop) for start, stop in spans]

    produced = [block for block in blocks if block is not None]
    pairs_considered = n * (n - 1) // 2
    if recorder.enabled:
        recorder.count("sweep.pairs_considered", pairs_considered)
        recorder.count(
            "events.blocks", len(spans), {"workers": workers, "n": n}
        )
    if not produced:
        empty = np.empty(0)
        return SeparatingEvents(
            empty,
            empty.astype(np.int64),
            empty.astype(np.int64),
            pairs_considered,
        )

    angles = np.concatenate([block[0] for block in produced])
    first = np.concatenate([block[1] for block in produced])
    second = np.concatenate([block[2] for block in produced])
    if recorder.enabled:
        recorder.count("sweep.events", len(angles))
    # Sort by angle; break ties by pair indices for determinism.
    order = np.lexsort((second, first, angles))
    return SeparatingEvents(
        angles[order], first[order], second[order], pairs_considered
    )
