"""Separating-vector event generation for the ConstructRJI sweep.

ConstructRJI (Section 6) considers every pair of dominating-set tuples
and computes its *separating point* — the sweep angle at which the two
tuples exchange relative order (Lemma 4).  Pairs in which one tuple
weakly dominates the other never swap inside the sweep interval and
produce no event.

The all-pairs computation is the asymptotically dominant part of index
construction (``O(|D_K|^2)``), so it is vectorized with NumPy and runs
in row blocks to bound peak memory: a block of ``B`` rows against ``n``
columns allocates ``O(B * n)`` temporaries.  Blocks are independent of
one another, so ``workers > 1`` computes them concurrently — on a
thread pool by default (NumPy releases the GIL inside the large
elementwise kernels), or with ``worker_mode="process"`` on a process
pool whose workers read the score columns from one shared-memory block
(each worker attaches the block once at startup; no per-task pickling
of the arrays, and the GIL is sidestepped entirely for the index
bookkeeping between kernels).  Either way the merge always happens in
block order and the final sort is a total order over ``(angle, first,
second)``, making the result identical for every worker count, block
partition and worker mode.  Events are returned sorted by angle,
matching the order in which the sweep consumes them.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import numpy as np

from ..errors import ConstructionError
from ..obs import NULL_RECORDER, Recorder
from .tuples import RankTupleSet

__all__ = ["SeparatingEvents", "WORKER_MODES", "separating_events"]

#: Accepted ``worker_mode`` values of :func:`separating_events`.
WORKER_MODES = ("thread", "process")


@dataclass(frozen=True)
class SeparatingEvents:
    """All separating events of a tuple set, sorted by angle.

    ``angles[m]`` is the separating point of the pair at array positions
    ``(first[m], second[m])`` of the originating :class:`RankTupleSet`.
    ``pairs_considered`` is the total number of pairs examined, including
    those that produced no event (used by construction-cost reporting).
    """

    angles: np.ndarray
    first: np.ndarray
    second: np.ndarray
    pairs_considered: int

    def __len__(self) -> int:
        return len(self.angles)


def _block_events(
    x: np.ndarray, y: np.ndarray, n: int, start: int, stop: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Separating events of rows ``[start, stop)`` against all columns.

    Pure function of its arguments (reads the shared score arrays, writes
    nothing), so blocks can run concurrently in any order.
    """
    rows = np.arange(start, stop)
    # Pairwise differences of rows [start, stop) against all columns;
    # only the strict upper triangle (j > i) is kept.
    dx = x[rows, None] - x[None, :]
    dy = y[rows, None] - y[None, :]
    upper = np.arange(n)[None, :] > rows[:, None]
    # A separating point exists iff dx and dy have strictly opposite
    # signs; then tan(angle) = -dx/dy is positive.
    crossing = upper & ((dx > 0) != (dy > 0)) & (dx != 0) & (dy != 0)
    if not crossing.any():
        return None
    row_idx, col_idx = np.nonzero(crossing)
    ratio = -dx[row_idx, col_idx] / dy[row_idx, col_idx]
    return (
        np.arctan(ratio),
        rows[row_idx].astype(np.int64),
        col_idx.astype(np.int64),
    )


# Worker-process state: the shared score block, attached once per
# worker by the pool initializer (module-global because pool tasks can
# only reach module scope in the child).
_WORKER_STATE: dict = {}


def _process_worker_init(shm_name: str, n: int) -> None:
    """Attach the parent's shared score block in a pool worker."""
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        # Attaching registers the segment with the resource tracker on
        # Python < 3.13.  Under "spawn" each worker runs its own tracker,
        # which would unlink the parent-owned segment at worker exit, so
        # deregister.  Under "fork"/"forkserver" the tracker is shared
        # with the parent — leave the registration alone there (the
        # parent's unlink clears it exactly once).
        import multiprocessing

        if multiprocessing.get_start_method() == "spawn":
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # noqa: BLE001 - tracker bookkeeping is best-effort;
        # a failed deregistration costs at worst one spurious unlink
        # warning at exit, never correctness.
        pass
    scores = np.frombuffer(shm.buf, dtype=np.float64, count=2 * n)
    # Keep the SharedMemory object referenced for the worker's lifetime:
    # the score views below borrow its mapping.
    _WORKER_STATE["shm"] = shm
    _WORKER_STATE["x"] = scores[:n]
    _WORKER_STATE["y"] = scores[n:]
    _WORKER_STATE["n"] = n


def _process_block(span: tuple[int, int]):
    """Run one row block against the worker's attached score columns."""
    return _block_events(
        _WORKER_STATE["x"],
        _WORKER_STATE["y"],
        _WORKER_STATE["n"],
        span[0],
        span[1],
    )


def _blocks_in_processes(
    x: np.ndarray,
    y: np.ndarray,
    n: int,
    spans: list[tuple[int, int]],
    workers: int,
) -> list:
    """Evaluate row blocks on a process pool over one shared-memory block.

    The two score columns are copied into a single shared-memory
    segment; each worker maps it once at startup and serves every block
    it is handed zero-copy, so task dispatch carries only ``(start,
    stop)`` pairs.  ``map`` yields in submission order, keeping the
    merge deterministic.  The parent closes and unlinks the segment
    when the pool drains, whether or not a worker failed.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(create=True, size=2 * n * 8)
    try:
        scores = np.frombuffer(shm.buf, dtype=np.float64, count=2 * n)
        scores[:n] = x
        scores[n:] = y
        del scores
        try:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(spans)),
                initializer=_process_worker_init,
                initargs=(shm.name, n),
            ) as pool:
                return list(pool.map(_process_block, spans))
        except BrokenProcessPool as exc:
            raise ConstructionError(
                "process-pool event generation failed: a worker died "
                f"({exc}); rerun with worker_mode='thread'"
            ) from exc
    finally:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - exported view leaked
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def separating_events(
    tuples: RankTupleSet,
    *,
    block_rows: int = 512,
    workers: int = 1,
    worker_mode: str = "thread",
    recorder: Recorder = NULL_RECORDER,
) -> SeparatingEvents:
    """Compute every pairwise separating point of ``tuples``.

    Peak additional memory is ``O(block_rows * n)`` per in-flight block
    for the pairwise difference temporaries plus the event output itself
    (worst case one event per pair, i.e. ``n*(n-1)/2`` — reached when no
    tuple dominates another, exactly the regime the dominating set lives
    in).  ``workers > 1`` evaluates up to that many row blocks
    concurrently — threads by default, or separate processes over a
    shared-memory copy of the score columns with
    ``worker_mode="process"`` (worth it once ``|D_K|`` is large enough
    that the Python-level block bookkeeping, not the NumPy kernels,
    bounds thread scaling).  Results are bit-identical to the
    sequential run in every mode because blocks run the same kernel,
    are merged in block order, and the final sort key ``(angle, first,
    second)`` is a total order over distinct pairs.
    """
    if block_rows < 1:
        raise ConstructionError(
            f"block_rows must be a positive integer, got {block_rows}"
        )
    if workers < 1:
        raise ConstructionError(
            f"workers must be a positive integer, got {workers}"
        )
    if worker_mode not in WORKER_MODES:
        raise ConstructionError(
            f"worker_mode must be one of {WORKER_MODES}, got {worker_mode!r}"
        )
    n = len(tuples)
    if n < 2:
        empty = np.empty(0)
        return SeparatingEvents(
            empty, empty.astype(np.int64), empty.astype(np.int64), 0
        )

    x = tuples.s1
    y = tuples.s2
    starts = range(0, n - 1, block_rows)
    spans = [(start, min(start + block_rows, n - 1)) for start in starts]

    if workers > 1 and len(spans) > 1 and worker_mode == "process":
        blocks = _blocks_in_processes(x, y, n, spans, workers)
    elif workers > 1 and len(spans) > 1:
        with ThreadPoolExecutor(
            max_workers=min(workers, len(spans))
        ) as pool:
            # map() yields in submission (block) order regardless of
            # completion order, keeping the merge deterministic.
            blocks = list(
                pool.map(
                    lambda span: _block_events(x, y, n, span[0], span[1]),
                    spans,
                )
            )
    else:
        blocks = [_block_events(x, y, n, start, stop) for start, stop in spans]

    produced = [block for block in blocks if block is not None]
    pairs_considered = n * (n - 1) // 2
    if recorder.enabled:
        recorder.count("sweep.pairs_considered", pairs_considered)
        recorder.count(
            "events.blocks", len(spans), {"workers": workers, "n": n}
        )
    if not produced:
        empty = np.empty(0)
        return SeparatingEvents(
            empty,
            empty.astype(np.int64),
            empty.astype(np.int64),
            pairs_considered,
        )

    angles = np.concatenate([block[0] for block in produced])
    first = np.concatenate([block[1] for block in produced])
    second = np.concatenate([block[2] for block in produced])
    if recorder.enabled:
        recorder.count("sweep.events", len(angles))
    # Sort by angle; break ties by pair indices for determinism.
    order = np.lexsort((second, first, angles))
    return SeparatingEvents(
        angles[order], first[order], second[order], pairs_considered
    )
