"""Separating-vector event generation for the ConstructRJI sweep.

ConstructRJI (Section 6) considers every pair of dominating-set tuples
and computes its *separating point* — the sweep angle at which the two
tuples exchange relative order (Lemma 4).  Pairs in which one tuple
weakly dominates the other never swap inside the sweep interval and
produce no event.

The all-pairs computation is the asymptotically dominant part of index
construction (``O(|D_K|^2)``), so it is vectorized with NumPy and runs
in row blocks to bound peak memory: a block of ``B`` rows against ``n``
columns allocates ``O(B * n)`` temporaries.  Events are returned sorted
by angle, matching the order in which the sweep consumes them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import NULL_RECORDER, Recorder
from .tuples import RankTupleSet

__all__ = ["SeparatingEvents", "separating_events"]


@dataclass(frozen=True)
class SeparatingEvents:
    """All separating events of a tuple set, sorted by angle.

    ``angles[m]`` is the separating point of the pair at array positions
    ``(first[m], second[m])`` of the originating :class:`RankTupleSet`.
    ``pairs_considered`` is the total number of pairs examined, including
    those that produced no event (used by construction-cost reporting).
    """

    angles: np.ndarray
    first: np.ndarray
    second: np.ndarray
    pairs_considered: int

    def __len__(self) -> int:
        return len(self.angles)


def separating_events(
    tuples: RankTupleSet,
    *,
    block_rows: int = 512,
    recorder: Recorder = NULL_RECORDER,
) -> SeparatingEvents:
    """Compute every pairwise separating point of ``tuples``.

    Peak additional memory is ``O(block_rows * n)`` for the pairwise
    difference blocks plus the event output itself (worst case one event
    per pair, i.e. ``n*(n-1)/2`` — reached when no tuple dominates
    another, exactly the regime the dominating set lives in).
    """
    n = len(tuples)
    if n < 2:
        empty = np.empty(0)
        return SeparatingEvents(
            empty, empty.astype(np.int64), empty.astype(np.int64), 0
        )

    x = tuples.s1
    y = tuples.s2
    angle_chunks: list[np.ndarray] = []
    first_chunks: list[np.ndarray] = []
    second_chunks: list[np.ndarray] = []

    for start in range(0, n - 1, block_rows):
        stop = min(start + block_rows, n - 1)
        rows = np.arange(start, stop)
        # Pairwise differences of rows [start, stop) against all columns;
        # only the strict upper triangle (j > i) is kept.
        dx = x[rows, None] - x[None, :]
        dy = y[rows, None] - y[None, :]
        upper = np.arange(n)[None, :] > rows[:, None]
        # A separating point exists iff dx and dy have strictly opposite
        # signs; then tan(angle) = -dx/dy is positive.
        crossing = upper & ((dx > 0) != (dy > 0)) & (dx != 0) & (dy != 0)
        if not crossing.any():
            continue
        row_idx, col_idx = np.nonzero(crossing)
        ratio = -dx[row_idx, col_idx] / dy[row_idx, col_idx]
        angle_chunks.append(np.arctan(ratio))
        first_chunks.append(rows[row_idx].astype(np.int64))
        second_chunks.append(col_idx.astype(np.int64))

    pairs_considered = n * (n - 1) // 2
    if not angle_chunks:
        if recorder.enabled:
            recorder.count("sweep.pairs_considered", pairs_considered)
        empty = np.empty(0)
        return SeparatingEvents(
            empty,
            empty.astype(np.int64),
            empty.astype(np.int64),
            pairs_considered,
        )

    angles = np.concatenate(angle_chunks)
    first = np.concatenate(first_chunks)
    second = np.concatenate(second_chunks)
    if recorder.enabled:
        recorder.count("sweep.pairs_considered", pairs_considered)
        recorder.count("sweep.events", len(angles))
    # Sort by angle; break ties by pair indices for determinism.
    order = np.lexsort((second, first, angles))
    return SeparatingEvents(
        angles[order], first[order], second[order], pairs_considered
    )
