"""Query workloads: preference vectors sampled over the query space.

Section 8.3 reports averages over 500 top-K queries "distributed
uniformly at random over the space of all possible queries" — since a
preference is (up to scale) a direction in the positive quadrant, the
uniform distribution over queries is the uniform distribution over the
sweep angle ``[0, pi/2]``.

This module lives in ``core`` (not ``datagen``) because preference
sampling is needed by core's own self-verification and advisor probing.
(The historical ``repro.datagen.workloads`` import path was retired
after its deprecation release; see docs/API.md.)
"""

from __future__ import annotations

import numpy as np

from ..errors import ConstructionError
from .scoring import Preference

__all__ = ["random_preferences", "grid_preferences"]


def random_preferences(
    n: int, *, seed: int = 0, mode: str = "angle"
) -> list[Preference]:
    """``n`` random preference vectors.

    ``mode="angle"`` (the paper's workload) draws the direction angle
    uniformly on ``[0, pi/2]``; ``mode="weights"`` draws raw weights
    uniformly on ``[0, 1]^2`` instead, a workload biased toward the
    diagonal that the ablations use for contrast.
    """
    rng = np.random.default_rng(seed)
    if mode == "angle":
        angles = rng.uniform(0.0, np.pi / 2.0, n)
        return [Preference.from_angle(float(a)) for a in angles]
    if mode == "weights":
        out: list[Preference] = []
        while len(out) < n:
            p1, p2 = rng.uniform(0.0, 1.0, 2)
            if p1 > 0.0 or p2 > 0.0:
                out.append(Preference(float(p1), float(p2)))
        return out
    raise ConstructionError(f"unknown workload mode {mode!r}")


def grid_preferences(n: int) -> list[Preference]:
    """``n`` evenly spaced directions across the open quadrant.

    Deterministic; used by exactness tests that want guaranteed coverage
    of every index region rather than random sampling.
    """
    if n < 1:
        raise ConstructionError(f"need at least one preference, got {n}")
    angles = np.linspace(0.0, np.pi / 2.0, n + 2)[1:-1]
    return [Preference.from_angle(float(a)) for a in angles]
