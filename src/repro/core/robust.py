"""Preference-robust candidates: top-k unions over angle intervals.

A natural extension the region structure makes cheap: a user who knows
their preference only approximately ("somewhere between 30 and 60
degrees") wants every tuple that is a top-k answer for *some* preference
in that range.  Because the index already partitions the angle axis into
regions whose K-sets are exact, the union of top-k answers over an
interval is computed region by region: within one region the top-k
*subset* of its K members changes only at the members' pairwise
separating angles, so a mini-sweep over at most K(K-1)/2 cut points per
region is exact.

For ``k == K`` this degenerates to the plain union of overlapping
regions' member sets.
"""

from __future__ import annotations

import math
import numbers

from ..errors import InvalidQueryError
from .geometry import HALF_PI, separating_angle
from .index import RankedJoinIndex
from .scoring import PreferenceLike, as_preference
from .sweep import Region

__all__ = ["robust_topk_candidates"]


def _endpoint_angle(value: PreferenceLike) -> float:
    """Sweep angle of one interval endpoint.

    Bare numbers pass through as angles (range-checked by the caller so
    out-of-range endpoints keep the historical "angle range" message);
    everything else goes through :func:`as_preference`.
    """
    if isinstance(value, numbers.Real) and not isinstance(value, bool):
        return float(value)
    return as_preference(value).angle


def _region_overlap(region: Region, lo: float, hi: float) -> tuple[float, float] | None:
    start = max(region.lo, lo)
    stop = min(region.hi, hi)
    if start > stop:
        return None
    return start, stop


def _topk_tids_at(
    index: RankedJoinIndex, region: Region, angle: float, k: int
) -> set[int]:
    p1, p2 = math.cos(angle), math.sin(angle)

    def key(tid: int):
        pos = index._position_of[tid]
        s1 = float(index.dominating.s1[pos])
        return (-(p1 * s1 + p2 * float(index.dominating.s2[pos])), -s1, tid)

    return set(sorted(region.tids, key=key)[:k])


def robust_topk_candidates(
    index: RankedJoinIndex, lo: PreferenceLike, hi: PreferenceLike, k: int
) -> set[int]:
    """Tuples in the top-k for at least one preference in ``[lo, hi]``.

    Each endpoint is anything :func:`~repro.core.scoring.as_preference`
    accepts — a :class:`~repro.core.scoring.Preference`, a ``(p1, p2)``
    pair, or a bare sweep angle in ``[0, pi/2]``; ``lo <= hi`` required
    (as angles).  Exact for standard and merged indices (any region is a
    superset of every top-k it covers, and the mini-sweep below resolves
    the subset exactly); works on the ordered variant too.
    """
    lo = _endpoint_angle(lo)
    hi = _endpoint_angle(hi)
    if not 0.0 <= lo <= hi <= HALF_PI + 1e-12:
        raise InvalidQueryError(
            f"angle range [{lo}, {hi}] must satisfy 0 <= lo <= hi <= pi/2"
        )
    if k < 1:
        raise InvalidQueryError(f"k must be positive, got {k}")
    if k > index.k_effective:
        raise InvalidQueryError(
            f"k={k} exceeds the effective bound {index.k_effective}"
        )

    out: set[int] = set()
    for region in index.regions:
        overlap = _region_overlap(region, lo, hi)
        if overlap is None:
            continue
        start, stop = overlap
        if k >= len(region.tids):
            out.update(region.tids)
            continue
        # Cut the overlap at every member-pair separating angle inside it.
        cuts: set[float] = set()
        members = region.tids
        values = {
            tid: (
                float(index.dominating.s1[index._position_of[tid]]),
                float(index.dominating.s2[index._position_of[tid]]),
            )
            for tid in members
        }
        for i in range(len(members)):
            a1, b1 = values[members[i]]
            for j in range(i + 1, len(members)):
                a2, b2 = values[members[j]]
                angle = separating_angle(a1, b1, a2, b2)
                if angle is not None and start < angle < stop:
                    cuts.add(angle)
        boundaries = [start, *sorted(cuts), stop]
        seen_intervals = zip(boundaries, boundaries[1:])
        for interval_lo, interval_hi in seen_intervals:
            midpoint = (interval_lo + interval_hi) / 2.0
            out |= _topk_tids_at(index, region, midpoint, k)
        # Interval endpoints shared with cuts are covered by adjacent
        # midpoints (scores tie exactly at the cut, so either side's
        # top-k multiset is valid there).
    return out
