"""Incremental maintenance of a Ranked Join Index.

The paper names incremental maintenance as ongoing work (Section 9);
this module provides an exact single-tuple insert and a lazy delete.

Insertion (:func:`insert_tuple`):

1. count the new tuple's dominators *within the current dominating set* —
   if a tuple has at least K dominators overall, at least K of them
   already belong to ``D_K`` (take the first K elements of any linear
   extension of its dominator poset: each has fewer than K dominators
   itself, all of which also dominate the tuple), so this test is exact;
2. a K-dominated tuple can never appear in any answer — no-op;
3. otherwise, every region is refreshed independently: within a region
   the new top-K at angle ``a`` is the top-K of (region tuples + new
   tuple).  For exact regions the region span is re-partitioned at every
   separating angle among those K+1 candidates, making each sub-span
   order-constant so one midpoint evaluation per sub-span is exact.
   Merged regions (width > K) stay merged: the new tuple is appended if
   it enters the top-K anywhere in the span, which preserves the
   "region covers every top-k in its span" invariant.

Deletion (:func:`delete_tuple`) is lazy: the tuple is dropped from the
dominating set and from every region that holds it, and the index-wide
guarantee ``k_effective`` drops by one whenever the victim was
materialized in at least one region.  The decrement is *permanent* until
a rebuild — in particular, later inserts refill region widths but must
not restore the guarantee: an insert only sees a region's surviving
members, so a region degraded to a top-(K-d) set stays a top-(K-d) set
no matter how many tuples are inserted afterwards (score ties at the
region boundary make any width-based accounting unsound; see the
stateful maintenance test for the counterexample that forced this
rule).  This is the classic build-fast/degrade-slowly trade-off; the
function returns the new effective bound so callers can schedule the
rebuild.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import MaintenanceError
from .geometry import separating_angle
from .index import RankedJoinIndex
from .sweep import Region
from .tuples import RankTuple, RankTupleSet

__all__ = ["insert_tuple", "delete_tuple", "is_k_dominated"]


def is_k_dominated(index: RankedJoinIndex, s1: float, s2: float) -> bool:
    """Whether a rank pair is dominated K times within the dominating set."""
    dom = index.dominating
    ge1 = dom.s1 >= s1
    ge2 = dom.s2 >= s2
    identical = (dom.s1 == s1) & (dom.s2 == s2)
    return int(np.count_nonzero(ge1 & ge2 & ~identical)) >= index.k_bound


def insert_tuple(index: RankedJoinIndex, new: RankTuple) -> bool:
    """Insert one join tuple; returns ``False`` when it was K-dominated.

    Exact: after the call the index answers every query as if it had
    been rebuilt over the extended input (rebuild-equivalence is what
    the test suite asserts).
    """
    dom = index.dominating
    if int(new.tid) in index._position_of:
        raise MaintenanceError(f"tuple id {new.tid} already indexed")
    if not (math.isfinite(new.s1) and math.isfinite(new.s2)):
        raise MaintenanceError("rank values must be finite")
    if is_k_dominated(index, new.s1, new.s2):
        return False

    extended = RankTupleSet(
        np.append(dom.tids, np.int64(new.tid)),
        np.append(dom.s1, np.float64(new.s1)),
        np.append(dom.s2, np.float64(new.s2)),
    )
    lookup = {
        int(tid): (float(a), float(b))
        for tid, a, b in zip(extended.tids, extended.s1, extended.s2)
    }

    refreshed: list[Region] = []
    for region in index._regions:
        refreshed.extend(_refresh_region(region, new, lookup, index))
    index._regions = _coalesce(refreshed, ordered=index.variant == "ordered")
    index._dominating = extended
    index._rebuild_lookup()
    return True


def _refresh_region(
    region: Region,
    new: RankTuple,
    lookup: dict[int, tuple[float, float]],
    index: RankedJoinIndex,
) -> list[Region]:
    k = index.k_bound
    if len(region.tids) > k:
        return _refresh_merged_region(region, new, lookup, k)
    return _split_region_exact(region, new, lookup, k, index.variant == "ordered")


def _cut_angles(
    region: Region, tids: list[int], lookup: dict[int, tuple[float, float]]
) -> list[float]:
    """Separating angles among the given tuples falling inside the region."""
    cuts: set[float] = set()
    for i in range(len(tids)):
        a1, b1 = lookup[tids[i]]
        for j in range(i + 1, len(tids)):
            a2, b2 = lookup[tids[j]]
            angle = separating_angle(a1, b1, a2, b2)
            if angle is not None and region.lo < angle < region.hi:
                cuts.add(angle)
    return sorted(cuts)


def _order_at(
    tids: list[int], lookup: dict[int, tuple[float, float]], angle: float
) -> list[int]:
    """Candidate tids by decreasing score at ``angle`` (index tie-break)."""
    p1, p2 = math.cos(angle), math.sin(angle)

    def key(tid: int):
        s1, s2 = lookup[tid]
        return (-(p1 * s1 + p2 * s2), -s1, tid)

    return sorted(tids, key=key)


def _split_region_exact(
    region: Region,
    new: RankTuple,
    lookup: dict[int, tuple[float, float]],
    k: int,
    ordered: bool,
) -> list[Region]:
    candidates = list(region.tids) + [int(new.tid)]
    k_eff = min(k, len(candidates))
    cuts = _cut_angles(region, candidates, lookup)
    boundaries = [region.lo, *cuts, region.hi]
    out: list[Region] = []
    for lo, hi in zip(boundaries, boundaries[1:]):
        top = _order_at(candidates, lookup, (lo + hi) / 2.0)[:k_eff]
        out.append(Region(lo, hi, tuple(top)))
    return _coalesce(out, ordered=ordered)


def _refresh_merged_region(
    region: Region,
    new: RankTuple,
    lookup: dict[int, tuple[float, float]],
    k: int,
) -> list[Region]:
    """Append the new tuple iff it reaches the top-K anywhere in the span.

    The new tuple's rank among the region's candidates only changes at
    its separating angles with them, so one evaluation per sub-span
    decides membership exactly.
    """
    members = list(region.tids)
    s1, s2 = new.s1, new.s2
    cuts: set[float] = set()
    for tid in members:
        a, b = lookup[tid]
        angle = separating_angle(s1, s2, a, b)
        if angle is not None and region.lo < angle < region.hi:
            cuts.add(angle)
    boundaries = [region.lo, *sorted(cuts), region.hi]
    candidates = members + [int(new.tid)]
    for lo, hi in zip(boundaries, boundaries[1:]):
        top = _order_at(candidates, lookup, (lo + hi) / 2.0)[:k]
        if int(new.tid) in top:
            return [Region(region.lo, region.hi, tuple(candidates))]
    return [region]


def _coalesce(regions: list[Region], *, ordered: bool) -> list[Region]:
    """Merge adjacent regions whose compositions are identical."""
    out: list[Region] = []
    for region in regions:
        if out and _same_composition(out[-1], region, ordered):
            out[-1] = Region(out[-1].lo, region.hi, out[-1].tids)
        else:
            out.append(region)
    return out


def _same_composition(left: Region, right: Region, ordered: bool) -> bool:
    if ordered:
        return left.tids == right.tids
    return set(left.tids) == set(right.tids)


def delete_tuple(index: RankedJoinIndex, tid: int) -> int:
    """Lazily delete a tuple; returns the new effective bound.

    Unknown tuple ids raise :class:`MaintenanceError`.  Tuples absent
    from every region only leave the dominating set; answers are
    unaffected and the bound keeps its value.
    """
    tid = int(tid)
    if tid not in index._position_of:
        raise MaintenanceError(f"tuple id {tid} is not in the index")

    new_regions: list[Region] = []
    was_materialized = False
    for region in index._regions:
        if tid in region.tids:
            was_materialized = True
            remaining = tuple(t for t in region.tids if t != tid)
            if not remaining:
                raise MaintenanceError(
                    "deleting the last tuple of a region; rebuild the index"
                )
            region = Region(region.lo, region.hi, remaining)
        new_regions.append(region)

    dom = index.dominating
    keep = dom.tids != tid
    index._dominating = dom[keep]
    index._regions = _coalesce(new_regions, ordered=index.variant == "ordered")
    index._rebuild_lookup()
    if was_materialized:
        index._k_effective = max(index._k_effective - 1, 0)
    return index._k_effective
