"""K-dominance pruning of the join result (Section 4 of the paper).

A tuple ``t'`` *dominates* ``t`` (Definition 3) when both of its rank
values are at least those of ``t`` and the two rank pairs are not
identical.  Lemma 2: a tuple dominated by at least ``K`` others can never
appear in the answer of any top-k join query with ``k <= K``, for any
monotone scoring function, so it can be pruned.

:func:`dominating_set` is the paper's *DominatingSet* algorithm
(Figure 2): one pass over the join result sorted by the first rank value,
keeping a size-``K`` min-heap of the largest second-rank values seen so
far.  A tuple whose second rank value falls strictly below the heap
minimum (with the heap full) has at least ``K`` strict dominators among
the already-seen tuples and is discarded.

Like the paper's algorithm, the output is a *correct* candidate set: it
contains the exact dominating set ``D_K`` and possibly a few additional
tuples that are tied on one rank value (the single-pass test cannot see
dominators that tie on the second rank value).  :func:`dominating_set_naive`
computes exact dominator counts in ``O(n^2)`` and is used as the test
oracle and for exactness-sensitive callers.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..errors import ConstructionError
from ..obs import NULL_RECORDER, Recorder
from .tuples import RankTupleSet

__all__ = ["dominating_set", "dominating_set_naive", "dominator_counts"]


def _require_positive_k(k: int) -> None:
    if k < 1:
        raise ConstructionError(f"K must be a positive integer, got {k}")


def dominating_set(
    tuples: RankTupleSet, k: int, *, recorder: Recorder = NULL_RECORDER
) -> RankTupleSet:
    """Prune tuples dominated by at least ``k`` others (Figure 2).

    Runs in ``O(n log n)`` for the sort plus ``O(n log k)`` for the scan.
    The result is ordered by (s1 desc, s2 desc, tid asc) — the ordering of
    the sweep's starting angle — which ConstructRJI relies on for cheap
    initialization of its running top-K set.
    """
    _require_positive_k(k)
    if len(tuples) == 0:
        return tuples

    ordered = tuples.sort_for_sweep()
    keep = np.zeros(len(ordered), dtype=bool)
    heap: list[float] = []  # min-heap of the k largest s2 seen so far
    s2 = ordered.s2
    for i in range(len(ordered)):
        value = s2[i]
        if len(heap) < k:
            keep[i] = True
            heapq.heappush(heap, value)
        elif value < heap[0]:
            # k earlier tuples have s1 >= and s2 strictly greater: pruned.
            continue
        else:
            keep[i] = True
            heapq.heappushpop(heap, value)
    kept = ordered[keep]
    if recorder.enabled:
        recorder.count("dominance.input", len(tuples))
        recorder.count("dominance.kept", len(kept))
        recorder.count("dominance.pruned", len(tuples) - len(kept))
    return kept


def dominator_counts(tuples: RankTupleSet) -> np.ndarray:
    """Exact number of dominators of every tuple, ``O(n^2)`` (test oracle)."""
    n = len(tuples)
    counts = np.zeros(n, dtype=np.int64)
    s1, s2 = tuples.s1, tuples.s2
    for i in range(n):
        ge1 = s1 >= s1[i]
        ge2 = s2 >= s2[i]
        identical = (s1 == s1[i]) & (s2 == s2[i])
        counts[i] = int(np.count_nonzero(ge1 & ge2 & ~identical))
    return counts


def dominating_set_naive(tuples: RankTupleSet, k: int) -> RankTupleSet:
    """Exact dominating set ``D_K`` by brute-force dominator counting.

    Quadratic; intended for tests and small inputs.  Output ordering
    matches :func:`dominating_set`.
    """
    _require_positive_k(k)
    if len(tuples) == 0:
        return tuples
    counts = dominator_counts(tuples)
    return tuples[counts < k].sort_for_sweep()
