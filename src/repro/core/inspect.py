"""Index introspection: human-readable reports about a built RJI.

Operational tooling for the CLI's ``index-describe`` and for debugging:
summarizes the region structure (count, angular widths, composition
churn between neighbours), the dominating set, and the size estimate.
"""

from __future__ import annotations

import math

import numpy as np

from .index import RankedJoinIndex

__all__ = ["describe_index", "region_churn"]


def region_churn(index: RankedJoinIndex) -> list[int]:
    """Symmetric-difference size between each pair of adjacent regions.

    For an unmerged index this is 2 between every pair (one tuple in,
    one out — Lemma 4); merged indices show larger steps.
    """
    regions = index.regions
    return [
        len(set(a.tids) ^ set(b.tids))
        for a, b in zip(regions, regions[1:])
    ]


def _quantiles(values: np.ndarray) -> str:
    if len(values) == 0:
        return "n/a"
    qs = np.quantile(values, [0.0, 0.5, 1.0])
    return f"min {qs[0]:.3g} / median {qs[1]:.3g} / max {qs[2]:.3g}"


def describe_index(index: RankedJoinIndex) -> str:
    """A multi-line structural report for one index."""
    regions = index.regions
    widths = np.array([r.width() for r in regions])
    sizes = np.array([len(r.tids) for r in regions])
    churn = np.array(region_churn(index)) if len(regions) > 1 else np.array([])
    stats = index.stats
    dom = index.dominating

    lines = [
        f"RankedJoinIndex K={index.k_bound} "
        f"(variant={index.variant}, effective k={index.k_effective})",
        "",
        f"input tuples        : {stats.n_input}",
        f"dominating set      : {stats.n_dominating} "
        f"({100.0 * stats.n_dominating / max(stats.n_input, 1):.2f}% of input)",
        f"separating points   : {index.n_separating}",
        f"regions             : {len(regions)}",
        f"region tuple counts : {_quantiles(sizes)}",
        f"region angular width: {_quantiles(widths)} "
        f"(quadrant = {math.pi / 2:.4f})",
        f"neighbour churn     : {_quantiles(churn)} tuples",
        f"logical size        : {index.logical_size_bytes()} bytes",
        "",
        "build time          : "
        f"dom {stats.time_dominating:.4f}s, "
        f"sweep {stats.time_separating:.4f}s, "
        f"load {stats.time_load:.4f}s",
    ]
    if len(dom):
        lines += [
            "",
            f"rank ranges         : s1 [{dom.s1.min():.4g}, {dom.s1.max():.4g}], "
            f"s2 [{dom.s2.min():.4g}, {dom.s2.max():.4g}]",
        ]
    return "\n".join(lines)
