"""Self-verification: cross-check an index against independent oracles.

Operational safety net for long-lived, maintained indices: probes the
index with random preferences and compares every answer against a full
scan of the reference population, plus the structural invariants.
Intended to be cheap enough to run after maintenance bursts and in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .index import RankedJoinIndex
from .tuples import RankTupleSet
from .workloads import random_preferences

__all__ = ["VerificationReport", "verify_index"]


@dataclass
class VerificationReport:
    """Outcome of one verification run."""

    probes: int = 0
    mismatches: list[str] = field(default_factory=list)
    structural_errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.structural_errors

    def render(self) -> str:
        if self.ok:
            return f"OK: {self.probes} probes, structure valid"
        lines = [f"FAILED after {self.probes} probes:"]
        lines += [f"  structural: {e}" for e in self.structural_errors]
        lines += [f"  mismatch: {m}" for m in self.mismatches[:10]]
        if len(self.mismatches) > 10:
            lines.append(f"  ... and {len(self.mismatches) - 10} more")
        return "\n".join(lines)


def verify_index(
    index: RankedJoinIndex,
    *,
    reference: RankTupleSet | None = None,
    n_probes: int = 100,
    seed: int = 0,
    atol: float = 1e-9,
) -> VerificationReport:
    """Probe an index against a brute-force oracle.

    ``reference`` is the tuple population the index is supposed to
    serve; by default the index's own dominating set is used (sufficient
    whenever the index was built with pruning from the same population —
    Lemma 2 guarantees identical top-k score multisets).  Returns a
    report rather than raising, so callers can log and decide.
    """
    report = VerificationReport()
    try:
        index.check_invariants()
    except Exception as exc:  # noqa: BLE001 - reported, not raised
        report.structural_errors.append(str(exc))

    population = reference if reference is not None else index.dominating
    if len(population) == 0:
        return report

    rng = np.random.default_rng(seed)
    preferences = random_preferences(n_probes, seed=seed)
    k_max = index.k_effective
    for preference in preferences:
        k = int(rng.integers(1, k_max + 1))
        report.probes += 1
        try:
            got = [r.score for r in index.query(preference, k)]
        except Exception as exc:  # noqa: BLE001 - a verifier must not crash
            report.mismatches.append(
                f"pref=({preference.p1:.4f},{preference.p2:.4f}) k={k}: "
                f"query raised {exc!r}"
            )
            continue
        scores = population.scores(preference.p1, preference.p2)
        want = min(k, len(population))
        expected = np.sort(scores)[::-1][:want]
        if len(got) != want or not np.allclose(
            got, expected, atol=atol, rtol=1e-12
        ):
            report.mismatches.append(
                f"pref=({preference.p1:.4f},{preference.p2:.4f}) k={k}: "
                f"got {got[:3]}..., expected {list(expected[:3])}..."
            )
    return report
