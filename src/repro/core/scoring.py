"""Monotone linear scoring functions and preference vectors.

Section 3 of the paper: a user expresses interest in the two rank
attributes with non-negative weights ``e = (p1, p2)``; the induced
scoring function is ``f_e(x, y) = p1*x + p2*y``, which is monotone
because the weights are non-negative.  The class of all such functions
is written ``L`` in the paper; a :class:`Preference` value uniquely
determines one member of ``L``.
"""

from __future__ import annotations

import math
import numbers
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from ..errors import InvalidPreferenceError, InvalidQueryError
from .geometry import angle_of, preference_at

__all__ = [
    "Preference",
    "PreferenceLike",
    "LinearScorer",
    "as_preference",
    "is_monotone_on_grid",
]


@dataclass(frozen=True, slots=True)
class Preference:
    """A user preference vector ``e = (p1, p2)`` with ``p1, p2 >= 0``.

    The magnitude of the vector is irrelevant to query results (Section
    5); :meth:`unit` returns the normalized representative and
    :attr:`angle` the sweep angle ``a(e)`` in ``[0, pi/2]``.
    """

    p1: float
    p2: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.p1) and math.isfinite(self.p2)):
            raise InvalidPreferenceError(
                f"preference weights must be finite, got ({self.p1}, {self.p2})"
            )
        if self.p1 < 0 or self.p2 < 0:
            raise InvalidPreferenceError(
                f"preference weights must be non-negative, got ({self.p1}, {self.p2})"
            )
        if self.p1 == 0 and self.p2 == 0:
            raise InvalidPreferenceError("preference vector must be non-zero")

    @property
    def angle(self) -> float:
        """Sweep angle ``a(e)`` of this preference, in ``[0, pi/2]``."""
        return angle_of(self.p1, self.p2)

    def unit(self) -> "Preference":
        """The unit-length preference pointing in the same direction."""
        norm = math.hypot(self.p1, self.p2)
        return Preference(self.p1 / norm, self.p2 / norm)

    @classmethod
    def from_angle(cls, angle: float) -> "Preference":
        """Unit preference at sweep angle ``angle`` in ``[0, pi/2]``."""
        if not 0.0 <= angle <= math.pi / 2.0 + 1e-12:
            raise InvalidPreferenceError(
                f"angle must lie in [0, pi/2], got {angle}"
            )
        p1, p2 = preference_at(angle)
        return cls(max(p1, 0.0), max(p2, 0.0))

    def score(self, s1: float, s2: float) -> float:
        """Score of one rank-value pair under this preference."""
        return self.p1 * s1 + self.p2 * s2

    def score_array(self, s1: np.ndarray, s2: np.ndarray) -> np.ndarray:
        """Vectorized scores for parallel arrays of rank values."""
        return self.p1 * np.asarray(s1, dtype=np.float64) + self.p2 * np.asarray(
            s2, dtype=np.float64
        )


#: Anything the query entry points accept as a preference: a built
#: :class:`Preference`, a ``(p1, p2)`` weight pair, or a raw sweep angle
#: in ``[0, pi/2]``.
PreferenceLike = Union[Preference, Sequence[float], float]


def as_preference(value: PreferenceLike) -> Preference:
    """Coerce ``value`` into a :class:`Preference`.

    The one shared coercion of every query entry point
    (:meth:`repro.core.index.RankedJoinIndex.query`, ``query_batch``,
    :func:`repro.core.robust.robust_topk_candidates`, the disk index,
    and the relational bindings).  Accepted forms:

    * a :class:`Preference` — returned unchanged;
    * a ``(p1, p2)`` pair (tuple, list, or 1-d array of length 2) of
      non-negative, not-all-zero weights;
    * a bare real number — interpreted as the sweep angle ``a(e)`` in
      ``[0, pi/2]``.

    Anything else — including malformed weights — raises
    :class:`~repro.errors.InvalidQueryError`.
    """
    if isinstance(value, Preference):
        return value
    try:
        if isinstance(value, numbers.Real) and not isinstance(value, bool):
            return Preference.from_angle(float(value))
        if isinstance(value, (tuple, list, np.ndarray)) and len(value) == 2:
            return Preference(float(value[0]), float(value[1]))
    except (InvalidPreferenceError, TypeError, ValueError) as exc:
        raise InvalidQueryError(f"invalid preference {value!r}: {exc}") from exc
    raise InvalidQueryError(
        f"cannot interpret {value!r} as a preference: expected a "
        "Preference, a (p1, p2) pair, or a sweep angle in [0, pi/2]"
    )


class LinearScorer:
    """Callable wrapper pairing a :class:`Preference` with score caching.

    Provided for API symmetry with the paper's ``f_e`` notation::

        f = LinearScorer(Preference(2.0, 1.0))
        f(10.0, 4.0)   # -> 24.0
    """

    __slots__ = ("preference",)

    def __init__(self, preference: Preference):
        self.preference = preference

    def __call__(self, s1: float, s2: float) -> float:
        return self.preference.score(s1, s2)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinearScorer({self.preference.p1}, {self.preference.p2})"


def is_monotone_on_grid(
    func, values: np.ndarray, *, tol: float = 0.0
) -> bool:
    """Check Definition 1 (monotonicity) of a scorer on a value grid.

    Exhaustively verifies that ``x <= x', y <= y'`` implies
    ``func(x, y) <= func(x', y') + tol`` over the cross product of
    ``values``.  Intended for tests and input validation of user-supplied
    scorers, not for hot paths.
    """
    vals = np.sort(np.asarray(values, dtype=np.float64))
    scores = np.array([[func(x, y) for y in vals] for x in vals])
    along_x = np.all(np.diff(scores, axis=0) >= -tol)
    along_y = np.all(np.diff(scores, axis=1) >= -tol)
    return bool(along_x and along_y)
