"""Planar convex hull, boundary-inclusive.

Shared geometric primitive: the Onion baseline peels hull layers with
it, and the multidimensional layered index uses it for its ``d == 2``
fast path.  It lives in ``core`` so both consumers sit above it in the
layer DAG.
"""

from __future__ import annotations

import numpy as np

__all__ = ["convex_hull_indices"]


def convex_hull_indices(points: np.ndarray) -> np.ndarray:
    """Positions of the convex hull of a point array, boundary-inclusive.

    Andrew's monotone chain over ``points[:, 0..1]``; collinear points on
    the boundary are kept (required for top-k correctness: a collinear
    boundary point can still be the unique linear maximizer's runner-up).
    For fewer than three points, all points are the hull.
    """
    n = len(points)
    if n <= 2:
        return np.arange(n)
    order = np.lexsort((points[:, 1], points[:, 0]))

    def half(indices) -> list[int]:
        chain: list[int] = []
        for i in indices:
            while len(chain) >= 2:
                o, a = chain[-2], chain[-1]
                cross = (points[a, 0] - points[o, 0]) * (
                    points[i, 1] - points[o, 1]
                ) - (points[a, 1] - points[o, 1]) * (points[i, 0] - points[o, 0])
                if cross < 0:  # keep collinear (cross == 0) points
                    chain.pop()
                else:
                    break
            chain.append(int(i))
        return chain

    lower = half(order)
    upper = half(order[::-1])
    hull = dict.fromkeys(lower + upper)  # ordered, deduplicated
    return np.fromiter(hull.keys(), dtype=np.int64)
