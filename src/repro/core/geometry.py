"""Planar geometry for the RJI sweep.

The paper (Section 5) represents both scoring functions and rank-value
pairs as vectors in the positive quadrant of the plane:

* a monotone linear scoring function ``f_e(x, y) = p1*x + p2*y`` is the
  vector ``e = (p1, p2)``;
* a join tuple with rank values ``(s1, s2)`` is the point/vector
  ``(s1, s2)``;
* the score of the tuple under ``f_e`` is the inner product ``e . s``,
  i.e. (for unit ``e``) the length of the projection of ``s`` onto ``e``.

The *angle* ``a(e)`` of a preference vector is measured from the s1-axis,
so the sweep of Section 6 runs from ``a = 0`` (score = s1) to
``a = pi/2`` (score = s2), counter-clockwise.

Two tuples ``t1, t2`` swap their relative order exactly when the sweeping
vector crosses the *separating vector*: the direction perpendicular to
``t1 - t2`` (Lemma 4).  The angle of that separating vector is the
*separating point*.  A separating point exists inside the open interval
``(0, pi/2)`` iff the components of ``t1 - t2`` have strictly opposite
signs, i.e. neither tuple dominates the other.
"""

from __future__ import annotations

import math
from fractions import Fraction

__all__ = [
    "HALF_PI",
    "angle_of",
    "preference_at",
    "separating_angle",
    "separating_tangent_exact",
    "project",
]

HALF_PI = math.pi / 2.0


def angle_of(p1: float, p2: float) -> float:
    """Angle ``a(e)`` in ``[0, pi/2]`` of the preference vector ``(p1, p2)``.

    The angle is measured counter-clockwise from the s1-axis.  Only the
    direction of ``e`` matters (Section 5: the result of a top-k query is
    invariant under scaling of ``e``).
    """
    return math.atan2(p2, p1)


def preference_at(angle: float) -> tuple[float, float]:
    """Unit preference vector ``(p1, p2)`` at a given sweep angle."""
    return math.cos(angle), math.sin(angle)


def separating_angle(
    s1_a: float, s2_a: float, s1_b: float, s2_b: float
) -> float | None:
    """Separating point of two rank-value pairs, or ``None``.

    Returns the angle ``a(e_s)`` in ``(0, pi/2)`` at which the scores of
    the two tuples are equal, i.e. where the sweeping vector is
    perpendicular to ``(a - b)``.  Returns ``None`` when the pairs never
    swap inside the open sweep interval: when one point weakly dominates
    the other (the difference vector has components of equal sign, Lemma
    4(a)) or when the points coincide.

    The mathematical angle is strictly interior, but for extreme aspect
    ratios floating-point rounding can land exactly on ``0.0`` or
    ``pi/2``; consumers (the sweep, maintenance) treat such events as
    boundary crossings with an empty interior interval.
    """
    dx = s1_a - s1_b
    dy = s2_a - s2_b
    # Scores are p1*dx + p2*dy = 0 with p1 = cos(a), p2 = sin(a), hence
    # tan(a) = -dx / dy.  A solution in (0, pi/2) needs tan(a) > 0, i.e.
    # dx and dy of strictly opposite (non-zero) signs.  When the signs are
    # opposite, -dx/dy is positive regardless of which component is the
    # negative one, so a single atan suffices (this exact expression is
    # shared with the vectorized event generator so both produce
    # bit-identical angles).
    if dx == 0.0 or dy == 0.0:
        return None
    if (dx > 0.0) == (dy > 0.0):
        return None
    return math.atan(-dx / dy)


def separating_tangent_exact(
    s1_a: float, s2_a: float, s1_b: float, s2_b: float
) -> Fraction | None:
    """Exact tangent of the separating point, as a :class:`Fraction`.

    Binary floats are dyadic rationals, so ``tan(a(e_s)) = -dx/dy`` is
    computed exactly.  Used by tests to validate the float angles used by
    the production sweep, and by callers that need exact co-linearity
    grouping.
    """
    dx = Fraction(s1_a) - Fraction(s1_b)
    dy = Fraction(s2_a) - Fraction(s2_b)
    if dx == 0 or dy == 0:
        return None
    if (dx > 0) == (dy > 0):
        return None
    return -dx / dy


def project(p1: float, p2: float, s1: float, s2: float) -> float:
    """Inner product of preference ``(p1, p2)`` with rank pair ``(s1, s2)``.

    This is the tuple's score; for a unit preference vector it equals the
    projection length of Figure 4(a).
    """
    return p1 * s1 + p2 * s2
