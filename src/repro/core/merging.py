"""Region merging — the space side of the space/time trade-off (§6.2).

Neighbouring regions differ by at most one tuple, so the union of ``m``
consecutive regions holds at most ``K + m - 1`` distinct tuples.  Merging
shrinks the number of separating points from ``l`` to about ``l / m`` at
the cost of evaluating up to ``K + m - 1`` tuples per query instead of
``K``.

Two strategies from the paper:

* :func:`merge_every` — merge every ``m`` consecutive regions (Figure
  8(b)), giving the fixed worst-case bound above.
* :func:`merge_adaptive` — greedily extend each merged region until it
  would exceed a distinct-tuple budget.  When tuples oscillate in and out
  of the top K across neighbouring regions this packs far more than
  ``m`` regions per budget, reducing space further *without* worsening
  the worst-case query time.
"""

from __future__ import annotations

from ..errors import ConstructionError
from .sweep import Region

__all__ = ["merge_every", "merge_adaptive"]


def _union_preserving_order(groups: list[tuple[int, ...]]) -> tuple[int, ...]:
    # dict.fromkeys dedups in first-seen order in one C-level pass.
    return tuple(dict.fromkeys(tid for tids in groups for tid in tids))


def merge_every(regions: list[Region], m: int) -> list[Region]:
    """Merge every ``m`` consecutive regions into one.

    The result still covers ``[0, pi/2]`` without gaps; each merged
    region holds at most ``K + m - 1`` distinct tuples.
    """
    if m < 1:
        raise ConstructionError(f"merge factor must be >= 1, got {m}")
    if m == 1 or len(regions) <= 1:
        return list(regions)
    merged: list[Region] = []
    for start in range(0, len(regions), m):
        chunk = regions[start : start + m]
        merged.append(
            Region(
                chunk[0].lo,
                chunk[-1].hi,
                _union_preserving_order([r.tids for r in chunk]),
            )
        )
    return merged


def merge_adaptive(regions: list[Region], max_distinct: int) -> list[Region]:
    """Greedily merge neighbours while staying within a tuple budget.

    Every output region (except possibly the last) holds as close to
    ``max_distinct`` distinct tuples as the input allows, which is the
    paper's "more aggressive reduction of space, without affecting the
    worst case query time".  ``max_distinct`` must be at least the number
    of tuples per input region (i.e. >= K).
    """
    if not regions:
        return []
    widest = max(len(r.tids) for r in regions)
    if max_distinct < widest:
        raise ConstructionError(
            f"distinct-tuple budget {max_distinct} is below the region "
            f"width {widest}; it must be at least K"
        )
    merged: list[Region] = []
    current: set[int] = set()
    group: list[Region] = []
    for region in regions:
        incoming = current | set(region.tids)
        if group and len(incoming) > max_distinct:
            merged.append(
                Region(
                    group[0].lo,
                    group[-1].hi,
                    _union_preserving_order([r.tids for r in group]),
                )
            )
            group = [region]
            current = set(region.tids)
        else:
            group.append(region)
            current = incoming
    merged.append(
        Region(
            group[0].lo,
            group[-1].hi,
            _union_preserving_order([r.tids for r in group]),
        )
    )
    return merged
