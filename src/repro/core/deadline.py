"""Cooperative per-query deadlines.

Every index front-door — :class:`~repro.core.index.RankedJoinIndex`,
:class:`~repro.core.concurrent.ConcurrentRankedJoinIndex`,
:class:`~repro.core.managed.ManagedRankedJoinIndex`, the resilient disk
wrapper in :mod:`repro.storage.resilient`, and the remote
:class:`repro.serve.Client` — accepts one canonical keyword-only
``deadline`` argument (a :class:`Deadline` or a plain number of
seconds, the :data:`DeadlineLike` alias) that the query paths check at
phase boundaries — after validation, after the descent that locates the
region, and around K-evaluation.  Checks are cooperative: a query is
never interrupted mid-phase (each phase is small, O(K log K) at worst),
but it can never run away unbounded either, and a timed-out query
raises the typed :class:`~repro.errors.QueryTimeoutError` instead of
hanging its caller.

The pre-redesign ``timeout=`` keyword of the serving wrappers served
its one deprecation release (docs/API.md, deprecation policy) and is
now retired: the wrappers accept only ``deadline=``, and passing
``timeout=`` fails with ``TypeError`` like any unknown keyword.

The clock is injectable so chaos tests drive deadlines
deterministically; production code uses ``time.monotonic``.
"""

from __future__ import annotations

import time
from typing import Callable, Union

from ..errors import QueryTimeoutError

__all__ = ["Deadline", "DeadlineLike"]


class Deadline:
    """An absolute point in (monotonic) time a query must not outlive."""

    __slots__ = ("_clock", "_expires_at", "timeout_s")

    def __init__(
        self,
        timeout_s: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if timeout_s <= 0:
            raise QueryTimeoutError(
                f"timeout must be positive, got {timeout_s}"
            )
        self.timeout_s = timeout_s
        self._clock = clock
        self._expires_at = clock() + timeout_s

    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self._expires_at - self._clock()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, phase: str = "query") -> None:
        """Raise :class:`~repro.errors.QueryTimeoutError` once expired."""
        if self.expired():
            raise QueryTimeoutError(
                f"deadline of {self.timeout_s:.6g}s exceeded during {phase}"
            )

    @classmethod
    def of(
        cls,
        deadline: "DeadlineLike",
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline | None":
        """Coerce the canonical ``deadline=`` argument forms.

        ``None`` propagates (no budget), an existing :class:`Deadline`
        passes through unchanged (its own clock and start time stand),
        and a plain number of seconds starts a fresh deadline on
        ``clock`` now.
        """
        if deadline is None or isinstance(deadline, Deadline):
            return deadline
        return cls(deadline, clock=clock)


#: What the canonical ``deadline=`` keyword accepts: an armed
#: :class:`Deadline`, a plain budget in seconds, or ``None``.
DeadlineLike = Union[Deadline, float, None]
