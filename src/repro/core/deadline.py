"""Cooperative per-query deadlines.

The serving wrappers (:class:`~repro.core.concurrent.ConcurrentRankedJoinIndex`,
:class:`~repro.core.managed.ManagedRankedJoinIndex`, and the resilient
disk wrapper in :mod:`repro.storage.resilient`) accept a ``timeout``
and turn it into a :class:`Deadline` that the query paths check at
phase boundaries — after validation, after the descent that locates the
region, and around K-evaluation.  Checks are cooperative: a query is
never interrupted mid-phase (each phase is small, O(K log K) at worst),
but it can never run away unbounded either, and a timed-out query
raises the typed :class:`~repro.errors.QueryTimeoutError` instead of
hanging its caller.

The clock is injectable so chaos tests drive deadlines
deterministically; production code uses ``time.monotonic``.
"""

from __future__ import annotations

import time
from typing import Callable

from ..errors import QueryTimeoutError

__all__ = ["Deadline"]


class Deadline:
    """An absolute point in (monotonic) time a query must not outlive."""

    __slots__ = ("_clock", "_expires_at", "timeout_s")

    def __init__(
        self,
        timeout_s: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if timeout_s <= 0:
            raise QueryTimeoutError(
                f"timeout must be positive, got {timeout_s}"
            )
        self.timeout_s = timeout_s
        self._clock = clock
        self._expires_at = clock() + timeout_s

    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self._expires_at - self._clock()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, phase: str = "query") -> None:
        """Raise :class:`~repro.errors.QueryTimeoutError` once expired."""
        if self.expired():
            raise QueryTimeoutError(
                f"deadline of {self.timeout_s:.6g}s exceeded during {phase}"
            )

    @classmethod
    def of(
        cls,
        timeout_s: float | None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline | None":
        """``None``-propagating constructor for optional timeouts."""
        if timeout_s is None:
            return None
        return cls(timeout_s, clock=clock)
