"""The chaos smoke scenario: the smoke workload under a fault plan.

``python -m repro.bench --faults <plan>`` runs the standard smoke
workload against a :class:`~repro.storage.ResilientDiskRankedJoinIndex`
whose underlying disk index is armed with a
:class:`~repro.faults.FaultPlan` (a built-in name such as
``transient-reads`` or a path to a plan JSON).  The report records what
resilience *costs*: latency split into disk-served and degraded-mode
buckets, retry/degradation counters, and the final health snapshot —
all under the registered ``resilience.*`` / ``faults.injected`` names.

The workload counters are deterministic for a given (config, plan)
pair: the injector's probability draws come from the plan's seed, and
queries run sequentially, so two runs inject the same faults at the
same operations.  Latencies vary run to run and are not gated.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import asdict
from pathlib import Path

from ..core.index import RankedJoinIndex
from ..core.workloads import random_preferences
from ..faults import FaultPlan, arm, builtin_plan
from ..obs import MetricsRecorder
from ..storage.diskindex import DiskRankedJoinIndex
from ..storage.resilient import (
    CircuitBreaker,
    ResilientDiskRankedJoinIndex,
    RetryPolicy,
)
from .runner import SMOKE_CONFIG, BenchConfig, _make_tuples, _percentiles

__all__ = ["load_plan", "run_chaos_benchmark"]


def load_plan(spec: str) -> FaultPlan:
    """Resolve a ``--faults`` argument: built-in plan name or JSON path."""
    if spec.endswith(".json"):
        return FaultPlan.load(spec)
    return builtin_plan(spec)


def run_chaos_benchmark(
    plan: FaultPlan, config: BenchConfig = SMOKE_CONFIG, *, mmap: bool = False
) -> dict:
    """Run the smoke workload under ``plan`` and report resilience costs.

    With ``mmap=True`` the disk index is saved to a scratch file and
    reopened zero-copy before the plan is armed, so the chaos contract
    (bit-identical / typed error / degraded-but-correct) is exercised
    against the memory-mapped read path too.
    """
    tuples = _make_tuples(config)
    preferences = random_preferences(config.n_queries, seed=config.seed + 1)

    fallback = RankedJoinIndex.build(
        tuples,
        config.k_bound,
        variant=config.variant,
        merge_slack=config.merge_slack,
        block_rows=config.block_rows,
        workers=config.workers,
    )
    disk = DiskRankedJoinIndex(
        fallback,
        page_size=config.page_size,
        buffer_capacity=config.buffer_capacity,
    )
    scratch: tempfile.TemporaryDirectory | None = None
    if mmap:
        scratch = tempfile.TemporaryDirectory()
        path = Path(scratch.name) / "chaos_mmap.rji"
        disk.save(path)
        disk = DiskRankedJoinIndex.open(
            path, mmap=True, cache_size=config.cache_size
        )

    recorder = MetricsRecorder()
    injector = arm(plan, disk_index=disk, recorder=recorder)
    resilient = ResilientDiskRankedJoinIndex(
        disk,
        fallback,
        retry=RetryPolicy(seed=plan.seed),
        breaker=CircuitBreaker(cooldown_s=0.010),
        recorder=recorder,
    )

    # Bucket each query's latency by whether it degraded: the degraded
    # counter's delta across the call attributes the sample exactly.
    disk_latencies: list[float] = []
    degraded_latencies: list[float] = []
    answers = []
    for preference in preferences:
        degraded_before = resilient.health().degraded_queries
        started = time.perf_counter()
        answers.append(resilient.query(preference, config.k_query))
        elapsed = time.perf_counter() - started
        if resilient.health().degraded_queries > degraded_before:
            degraded_latencies.append(elapsed)
        else:
            disk_latencies.append(elapsed)

    expected = [
        fallback.query(preference, config.k_query)
        for preference in preferences
    ]
    if answers != expected:
        raise AssertionError(
            "resilient serving returned answers that differ from the "
            "scalar path; degradation must never change results"
        )

    health = resilient.health()
    if scratch is not None:
        close = getattr(disk.pager, "close", None)
        if close is not None:
            close()
        scratch.cleanup()
    return {
        "schema_version": 1,
        "config": asdict(config),
        "mmap": mmap,
        "plan": plan.to_dict(),
        "faults_injected": len(injector.log),
        "health": health.to_snapshot()["counters"],
        "last_fault": health.last_fault,
        "disk_latency": (
            _percentiles(disk_latencies) if disk_latencies else None
        ),
        "degraded_latency": (
            _percentiles(degraded_latencies) if degraded_latencies else None
        ),
        "answers_match_scalar_path": True,
    }
