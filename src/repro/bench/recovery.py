"""Crash-recovery chaos runs: ``python -m repro.bench --recovery``.

Every scenario injects a crash into the durable write path (through the
:mod:`repro.faults` hooks, or by physically tearing the WAL tail),
recovers, and checks the durability contract:

* **acknowledged writes survive** — every write whose ``insert``/
  ``delete`` returned before the crash is present in the recovered
  live set with the exact values written;
* **unacknowledged writes are atomic** — the one in-flight write either
  survives whole (its WAL records were already durable) or is cleanly
  absent; nothing in between, and recovery itself raises nothing;
* **no corruption is served** — the recovered index's merged top-k is
  bit-identical to a scalar rebuild from the recovered live set, via
  :class:`~repro.storage.durable.DurableRankedJoinIndex` *and* via
  :meth:`~repro.storage.diskindex.DiskRankedJoinIndex.recover` (eager
  or ``mmap=True``, exercising both read paths CI runs).

The run writes ``RECOVERY_<name>.json`` and exits non-zero on any
violation — the report is the artifact CI uploads on failure.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path

import numpy as np

from ..core.index import RankedJoinIndex
from ..core.tuples import RankTuple
from ..core.workloads import random_preferences
from ..errors import TransientStorageError
from ..faults import arm, builtin_plan
from ..storage.diskindex import DiskRankedJoinIndex
from ..storage.durable import DurableRankedJoinIndex
from .runner import BenchConfig, _make_tuples

__all__ = [
    "RECOVERY_CONFIG",
    "RecoveryBenchConfig",
    "run_recovery_benchmark",
]


@dataclass(frozen=True, slots=True)
class RecoveryBenchConfig:
    """One fully-seeded crash-recovery sweep."""

    name: str = "recovery"
    dataset: str = "uniform"
    n_tuples: int = 1500
    k_bound: int = 20
    k_query: int = 10
    seed: int = 7
    #: writes attempted before/after the armed crash point.
    n_writes: int = 12
    #: one delete per this many inserts (kept low: replayed tombstones
    #: must leave ``k_query`` exact on the image-recovery path).
    inserts_per_delete: int = 4
    n_probes: int = 16
    #: open the recovered image zero-copy (the ``--mmap`` CI leg).
    mmap: bool = False


#: The default (and CI) recovery sweep.
RECOVERY_CONFIG = RecoveryBenchConfig()

#: The crash scenarios the sweep always runs: the builtin crash plans,
#: the compaction crash at each of its four safety boundaries, and a
#: physically torn WAL tail.
SCENARIOS = (
    "crash-append",
    "crash-commit",
    "crash-apply",
    "crash-compaction@0",
    "crash-compaction@1",
    "crash-compaction@2",
    "crash-compaction@3",
    "torn-tail",
)


def _write_stream(config: RecoveryBenchConfig, rng):
    """The deterministic op stream: mostly inserts, some deletes."""
    ops = []
    next_tid = 10_000_000
    for i in range(config.n_writes):
        if i and i % config.inserts_per_delete == 0:
            ops.append(("delete", int(rng.integers(config.n_tuples)), 0.0, 0.0))
        else:
            ops.append(
                (
                    "insert",
                    next_tid,
                    float(rng.random()),
                    float(rng.random()),
                )
            )
            next_tid += 1
    return ops


def _apply_op(index, pool, op):
    """Apply one stream op to the index and the shadow pool."""
    kind, tid, s1, s2 = op
    if kind == "insert":
        index.insert(RankTuple(tid, s1, s2))
        pool[tid] = RankTuple(tid, s1, s2)
    else:
        if tid in pool and len(pool) > 1:
            index.delete(tid)
            del pool[tid]


def _tear_tail(wal_dir: Path) -> None:
    """Append half a record of garbage: a write torn mid-flight."""
    newest = max(wal_dir.glob("wal-*.seg"))
    with newest.open("ab") as handle:
        handle.write(b"\x7f" * 20)


def _probe_mismatches(index, pool, preferences, k, k_bound) -> int:
    reference = RankedJoinIndex.build(sorted(pool.values()), k_bound)
    return sum(
        index.query(p, k) != reference.query(p, k) for p in preferences
    )


def _run_scenario(config: RecoveryBenchConfig, scenario: str) -> dict:
    base = _make_tuples(
        BenchConfig(
            dataset=config.dataset,
            n_tuples=config.n_tuples,
            k_bound=config.k_bound,
            seed=config.seed,
        )
    )
    preferences = random_preferences(config.n_probes, seed=config.seed + 3)
    rng = np.random.default_rng(config.seed + 41)
    stream = _write_stream(config, rng)
    violations: list[str] = []

    with tempfile.TemporaryDirectory(prefix="rji-recovery-") as tmp:
        directory = Path(tmp)
        index = DurableRankedJoinIndex.create(
            directory, base, config.k_bound, compaction_threshold=10**9
        )
        acked = {
            int(t.tid): RankTuple(int(t.tid), float(t.s1), float(t.s2))
            for t in base
        }
        inflight = None
        crashed = False

        if scenario.startswith("crash-compaction"):
            boundary = int(scenario.split("@")[1])
            for op in stream:
                _apply_op(index, acked, op)
            plan = builtin_plan("crash-compaction")
            plan = replace(
                plan, specs=(replace(plan.specs[0], at=boundary),)
            )
            arm(plan, durable=index)
            try:
                index.compact()
            except TransientStorageError:
                crashed = True
        elif scenario == "torn-tail":
            for op in stream:
                _apply_op(index, acked, op)
            index.close()
            _tear_tail(directory / "wal")
            crashed = True
        else:
            arm(builtin_plan(scenario), durable=index)
            for op in stream:
                shadow = dict(acked)
                try:
                    _apply_op(index, shadow, op)
                except TransientStorageError:
                    crashed = True
                    inflight = op
                    break
                acked = shadow
        if not crashed:
            violations.append(f"{scenario}: the crash plan never fired")
        if scenario != "torn-tail":
            index.close()

        started = time.perf_counter()
        recovered = DurableRankedJoinIndex.recover(directory)
        recover_s = time.perf_counter() - started
        report = recovered.last_recovery
        live = {t.tid: t for t in recovered.live_tuples()}

        # Acked writes must all be present with the exact values.
        for tid, tuple_ in acked.items():
            if live.get(tid) != tuple_:
                violations.append(
                    f"{scenario}: acknowledged tuple {tid} lost or mangled"
                )
        # The in-flight write is all-or-nothing.
        expected = {frozenset(acked)}
        if inflight is not None:
            with_inflight = dict(acked)
            _apply_op_shadow = (
                with_inflight.__setitem__
                if inflight[0] == "insert"
                else lambda t, _v: with_inflight.pop(t, None)
            )
            _apply_op_shadow(
                inflight[1], RankTuple(inflight[1], inflight[2], inflight[3])
            )
            expected.add(frozenset(with_inflight))
        if frozenset(live) not in expected:
            violations.append(
                f"{scenario}: recovered live set matches neither the "
                "acknowledged state nor acknowledged+in-flight"
            )
        if scenario == "torn-tail" and report.torn_tails != 1:
            violations.append(
                f"{scenario}: expected 1 truncated tail, "
                f"saw {report.torn_tails}"
            )

        # Served answers must equal a from-scratch rebuild, on the
        # durable front-door and on the recovered disk image.
        wrong = _probe_mismatches(
            recovered, live, preferences, config.k_query, config.k_bound
        )
        if wrong:
            violations.append(
                f"{scenario}: {wrong} merged answers differ from rebuild"
            )
        recovered.close()

        disk = DiskRankedJoinIndex.recover(
            directory / "base.rji",
            directory / "wal",
            mmap=config.mmap,
        )
        disk_wrong = _probe_mismatches(
            disk, live, preferences, config.k_query, config.k_bound
        )
        if disk_wrong:
            violations.append(
                f"{scenario}: {disk_wrong} disk-recovery answers differ "
                "from rebuild"
            )
        disk_report = disk.last_recovery
        del disk

    return {
        "scenario": scenario,
        "crashed": crashed,
        "acked_writes": len(stream) if inflight is None else None,
        "recover_seconds": recover_s,
        "recovery": {
            "checkpoint_lsn": report.checkpoint_lsn,
            "last_lsn": report.last_lsn,
            "replayed": report.replayed,
            "torn_tails": report.torn_tails,
            "n_live": report.n_live,
        },
        "disk_recovery_replayed": disk_report.replayed,
        "violations": violations,
    }


def run_recovery_benchmark(
    config: RecoveryBenchConfig = RECOVERY_CONFIG,
) -> dict:
    """Run every crash scenario; returns the JSON-ready report."""
    results = [_run_scenario(config, scenario) for scenario in SCENARIOS]
    violations = [v for result in results for v in result["violations"]]
    return {
        "schema_version": 1,
        "config": asdict(config),
        "scenarios": results,
        "n_violations": len(violations),
        "violations": violations,
    }
