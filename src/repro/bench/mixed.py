"""The mixed read/write benchmark: ``python -m repro.bench --mixed``.

A closed loop over one :class:`~repro.storage.durable.DurableRankedJoinIndex`:
zipf-skewed top-k reads interleaved with a steady insert/delete stream,
every write riding the WAL-then-delta path (append + fsync commit +
delta apply, compaction when the buffer fattens).  The scenario reports

* **read latency** — p50/p99/mean over the merged (base ∪ delta) query
  path, the number a read replica would see while taking writes;
* **write latency** — p50/p99 of the full durable write (the fsync is
  in the loop), plus the count and duration of compaction pauses;
* **correctness** — after the loop *and again after close + recover*,
  every probe preference's merged top-k is compared bit-for-bit against
  a scalar rebuild from the shadow tuple pool.  Mismatches land in the
  gated ``query_counters`` section with a baseline of zero.

The write-path counters (``wal.appends``/``wal.commits``/``wal.fsyncs``
/``compaction.runs``/...) are a deterministic function of the seeded
config, so they are gated too: an accidental extra fsync per write or a
compaction-threshold regression fails the CI compare, not a dashboard
review three weeks later.  Timing-shaped numbers stay ungated in the
``mixed`` section.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from ..core.index import RankedJoinIndex
from ..core.tuples import RankTuple
from ..core.workloads import random_preferences
from ..obs import MetricsRecorder
from ..storage.durable import DurableRankedJoinIndex
from .runner import BenchConfig, _make_tuples, _percentiles

__all__ = ["MIXED_CONFIG", "MixedBenchConfig", "run_mixed_benchmark"]


@dataclass(frozen=True, slots=True)
class MixedBenchConfig:
    """One fully-seeded mixed read/write scenario."""

    name: str = "mixed"
    dataset: str = "uniform"
    n_tuples: int = 4000
    k_bound: int = 20
    k_query: int = 10
    seed: int = 7
    #: closed-loop shape: one write every ``reads_per_write`` reads.
    n_reads: int = 2000
    reads_per_write: int = 5
    #: distinct probe preferences; reads draw zipf-skewed among them.
    n_preferences: int = 64
    zipf_s: float = 1.2
    #: delta entries that trigger a durable compaction.
    compaction_threshold: int = 64
    #: fsync on every commit (the honest number; False only for tests).
    fsync: bool = True


#: The default (and CI smoke) mixed scenario.
MIXED_CONFIG = MixedBenchConfig()


def _zipf_draws(config: MixedBenchConfig, n: int) -> np.ndarray:
    """Seeded zipf-skewed indices into the probe preference list."""
    ranks = np.arange(1, config.n_preferences + 1, dtype=np.float64)
    weights = ranks ** (-config.zipf_s)
    weights /= weights.sum()
    rng = np.random.default_rng(config.seed + 17)
    return rng.choice(config.n_preferences, size=n, p=weights)


def _mismatches(index, pool: dict, preferences, k: int, k_bound: int) -> int:
    """Probe answers vs a scalar rebuild of the same logical tuple set."""
    reference = RankedJoinIndex.build(sorted(pool.values()), k_bound)
    wrong = 0
    for preference in preferences:
        if index.query(preference, k) != reference.query(preference, k):
            wrong += 1
    return wrong


def run_mixed_benchmark(config: MixedBenchConfig = MIXED_CONFIG) -> dict:
    """Run the mixed scenario; returns the JSON-ready report."""
    base = _make_tuples(
        BenchConfig(
            dataset=config.dataset,
            n_tuples=config.n_tuples,
            k_bound=config.k_bound,
            seed=config.seed,
        )
    )
    preferences = random_preferences(
        config.n_preferences, seed=config.seed + 3
    )
    reads = _zipf_draws(config, config.n_reads)
    rng = np.random.default_rng(config.seed + 29)
    metrics = MetricsRecorder()

    with tempfile.TemporaryDirectory(prefix="rji-mixed-") as tmp:
        directory = Path(tmp)
        started = time.perf_counter()
        index = DurableRankedJoinIndex.create(
            directory,
            base,
            config.k_bound,
            compaction_threshold=config.compaction_threshold,
            fsync=config.fsync,
            recorder=metrics,
        )
        create_s = time.perf_counter() - started
        pool = {
            int(t.tid): RankTuple(int(t.tid), float(t.s1), float(t.s2))
            for t in base
        }
        next_tid = max(pool) + 1

        read_latencies: list[float] = []
        write_latencies: list[float] = []
        n_inserts = n_deletes = 0
        loop_started = time.perf_counter()
        for step, choice in enumerate(reads):
            preference = preferences[int(choice)]
            t0 = time.perf_counter()
            index.query(preference, config.k_query)
            read_latencies.append(time.perf_counter() - t0)
            if step % config.reads_per_write:
                continue
            # Alternate a fresh insert with a delete of a random live
            # tuple, so the pool size stays roughly flat and tombstones
            # exercise the merge path on every read between them.
            if (step // config.reads_per_write) % 2 == 0:
                tuple_ = RankTuple(
                    next_tid, float(rng.random()), float(rng.random())
                )
                t0 = time.perf_counter()
                index.insert(tuple_)
                write_latencies.append(time.perf_counter() - t0)
                pool[next_tid] = tuple_
                next_tid += 1
                n_inserts += 1
            else:
                victim = int(rng.choice(sorted(pool)))
                t0 = time.perf_counter()
                index.delete(victim)
                write_latencies.append(time.perf_counter() - t0)
                del pool[victim]
                n_deletes += 1
        loop_s = time.perf_counter() - loop_started

        live_mismatches = _mismatches(
            index, pool, preferences, config.k_query, config.k_bound
        )
        pauses = list(index.compaction_pauses)
        index.close()

        # Reopen from disk: the WAL replay must reproduce the identical
        # logical state — same probes, same scalar reference.
        recovered = DurableRankedJoinIndex.recover(
            directory, fsync=config.fsync
        )
        report_obj = recovered.last_recovery
        recovered_mismatches = _mismatches(
            recovered, pool, preferences, config.k_query, config.k_bound
        )
        pool_drift = int(
            recovered.n_live != len(pool)
            or {t.tid for t in recovered.live_tuples()} != set(pool)
        )
        recovered.close()

    counters = metrics.snapshot()["counters"]
    n_ops = config.n_reads + len(write_latencies)
    return {
        "schema_version": 1,
        "config": asdict(config),
        "query_latency": _percentiles(read_latencies),
        "mixed": {
            "create_seconds": create_s,
            "loop_seconds": loop_s,
            "ops_per_second": (n_ops / loop_s) if loop_s > 0 else 0.0,
            "n_reads": config.n_reads,
            "n_inserts": n_inserts,
            "n_deletes": n_deletes,
            "write_latency": _percentiles(write_latencies),
            "compaction_pauses": len(pauses),
            "compaction_pause_max_s": max(pauses) if pauses else 0.0,
            "compaction_pause_total_s": sum(pauses),
            "recovery": {
                "checkpoint_lsn": report_obj.checkpoint_lsn,
                "last_lsn": report_obj.last_lsn,
                "replayed": report_obj.replayed,
                "torn_tails": report_obj.torn_tails,
                "n_live": report_obj.n_live,
            },
        },
        "query_counters": {
            # Correctness: zero on a healthy write path, gated in CI.
            "mixed.mismatches": live_mismatches,
            "mixed.recovered_mismatches": recovered_mismatches,
            "mixed.recovered_pool_drift": pool_drift,
            "mixed.recovery_torn_tails": report_obj.torn_tails,
            # Write-path shape: deterministic for the seeded config.
            "wal.appends": counters.get("wal.appends", 0),
            "wal.commits": counters.get("wal.commits", 0),
            "wal.fsyncs": counters.get("wal.fsyncs", 0),
            "wal.checkpoints": counters.get("wal.checkpoints", 0),
            "delta.inserts": counters.get("delta.inserts", 0),
            "delta.deletes": counters.get("delta.deletes", 0),
            "delta.merged_queries": counters.get("delta.merged_queries", 0),
            "compaction.runs": counters.get("compaction.runs", 0),
        },
    }
