"""repro.bench — the reproducible benchmark harness.

Seeded workloads from :mod:`repro.core.workloads` over datasets from
:mod:`repro.datagen`, measured through :mod:`repro.obs`, reported as
``BENCH_<name>.json``.  The CI smoke job runs
``python -m repro.bench --smoke``; the JSON schema is documented in
``docs/OBSERVABILITY.md``.
"""

from .runner import SMOKE_CONFIG, BenchConfig, run_benchmark, write_report

__all__ = ["BenchConfig", "SMOKE_CONFIG", "run_benchmark", "write_report"]
