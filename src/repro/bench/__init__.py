"""repro.bench — the reproducible benchmark harness.

Seeded workloads from :mod:`repro.core.workloads` over datasets from
:mod:`repro.datagen`, measured through :mod:`repro.obs`, reported as
``BENCH_<name>.json``.  The CI smoke job runs
``python -m repro.bench --smoke``; the JSON schema is documented in
``docs/OBSERVABILITY.md``.
"""

from .chaos import load_plan, run_chaos_benchmark
from .compare import (
    ComparisonError,
    MetricDelta,
    ReportComparison,
    compare_reports,
    load_report,
    render_comparison,
)
from .mixed import MIXED_CONFIG, MixedBenchConfig, run_mixed_benchmark
from .openbench import OPEN_CONFIG, run_open_benchmark
from .recovery import (
    RECOVERY_CONFIG,
    RecoveryBenchConfig,
    run_recovery_benchmark,
)
from .runner import (
    BUILD_HEAVY_CONFIG,
    SMOKE_CONFIG,
    BenchConfig,
    run_benchmark,
    write_report,
)
from .serve import SERVE_CONFIG, ServeBenchConfig, run_serve_benchmark

__all__ = [
    "BUILD_HEAVY_CONFIG",
    "BenchConfig",
    "ComparisonError",
    "MIXED_CONFIG",
    "MetricDelta",
    "MixedBenchConfig",
    "OPEN_CONFIG",
    "RECOVERY_CONFIG",
    "RecoveryBenchConfig",
    "ReportComparison",
    "SERVE_CONFIG",
    "SMOKE_CONFIG",
    "ServeBenchConfig",
    "compare_reports",
    "load_plan",
    "load_report",
    "render_comparison",
    "run_benchmark",
    "run_chaos_benchmark",
    "run_mixed_benchmark",
    "run_open_benchmark",
    "run_recovery_benchmark",
    "run_serve_benchmark",
    "write_report",
]
