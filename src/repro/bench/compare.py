"""Report-to-report comparison and the bench regression gate.

``python -m repro.bench --compare OLD.json NEW.json`` diffs two
``BENCH_<name>.json`` reports produced by :func:`repro.bench.run_benchmark`
and decides whether NEW regressed relative to OLD.

The *gate* is counters-based by default.  Counters (pairs considered,
events, regions, per-query tuples evaluated, page reads, index bytes)
are deterministic for a seeded config — two runs of the same code
produce the same values — so a gated counter growing past the threshold
is a real algorithmic regression, not machine noise.  Wall-clock
metrics (build seconds, query percentiles) are always *reported* but
only *gated* when explicitly requested (``--gate-time``), because
shared CI runners routinely show 50%+ timing variance.

One gate is absolute rather than relative: every
``query_series.<name>.dropped`` in the NEW report must be zero.  A
dropped sample means the series summary (and any percentile computed
from it) describes a truncated sample set, so the report no longer
backs its exactness claim — that fails the gate even when the baseline
dropped samples too, and even for series the baseline predates.

Comparisons are shape-tolerant: a metric present in only one report
(e.g. a counter introduced after the baseline was captured) is listed
as added/removed and never gated.  Config keys present in both reports
must agree (``name`` excluded) — comparing different scenarios is a
usage error, not a regression.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

__all__ = [
    "ComparisonError",
    "MetricDelta",
    "ReportComparison",
    "compare_reports",
    "load_report",
    "render_comparison",
]

#: Counter metrics where growth past the threshold fails the gate.
#: Everything here is "work done" — more is strictly worse.
_GATED_PREFIXES = ("query_counters.",)

#: Per-series retention-drop counts.  A non-zero ``dropped`` means the
#: series' min/max/mean (and any percentile derived from it) summarize
#: a truncated sample set, so the report's exactness claim is void —
#: these gate at exactly zero in the NEW report, independent of the
#: ratio threshold and of whether the baseline predates the metric.
_DROPPED_PREFIX = "query_series."
_DROPPED_SUFFIX = ".dropped"
_GATED_METRICS = frozenset(
    {
        "build.pairs_considered",
        "build.n_events",
        "build.n_regions",
        "build.n_separating",
        "build.n_dominating",
        "disk.pager_reads",
        "disk.buffer_misses",
        "disk.index_pages",
        "disk.index_bytes",
    }
)

#: Timing metrics, gated only under ``gate_time=True``.
_TIMED_METRICS = frozenset(
    {
        "build.wall_seconds",
        "query_latency.p50_s",
        "query_latency.p99_s",
        "query_latency.mean_s",
    }
)


class ComparisonError(Exception):
    """The two reports cannot be meaningfully compared."""


@dataclass(frozen=True)
class MetricDelta:
    """One metric's movement between the old and new report."""

    name: str
    old: float | None
    new: float | None
    gated: bool
    regressed: bool

    @property
    def ratio(self) -> float | None:
        """``new / old``; ``None`` when either side is missing or zero."""
        if self.old is None or self.new is None or self.old == 0:
            return None
        return self.new / self.old


@dataclass(frozen=True)
class ReportComparison:
    """The full diff between two benchmark reports."""

    old_name: str
    new_name: str
    deltas: tuple[MetricDelta, ...]
    threshold: float
    gate_time: bool
    time_threshold: float

    @property
    def regressions(self) -> tuple[MetricDelta, ...]:
        return tuple(d for d in self.deltas if d.regressed)

    @property
    def ok(self) -> bool:
        return not self.regressions


def load_report(path: str | Path) -> dict:
    """Read one ``BENCH_*.json`` report, validating its shape."""
    path = Path(path)
    try:
        report = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ComparisonError(f"cannot read report {path}: {exc}") from exc
    if not isinstance(report, dict) or "config" not in report:
        raise ComparisonError(f"{path} is not a benchmark report")
    return report


def _check_configs(old: dict, new: dict) -> None:
    old_config = old.get("config", {})
    new_config = new.get("config", {})
    shared = (set(old_config) & set(new_config)) - {"name"}
    mismatched = {
        key: (old_config[key], new_config[key])
        for key in sorted(shared)
        if old_config[key] != new_config[key]
    }
    if mismatched:
        details = ", ".join(
            f"{key}: {was!r} -> {now!r}"
            for key, (was, now) in mismatched.items()
        )
        raise ComparisonError(
            f"reports ran different scenarios ({details}); "
            "regenerate the baseline or compare matching configs"
        )


def _numeric_metrics(report: dict) -> dict[str, float]:
    """Flatten the comparable numeric metrics of one report."""
    metrics: dict[str, float] = {}

    def take(section: str, key: str) -> None:
        value = report.get(section, {}).get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            metrics[f"{section}.{key}"] = float(value)

    for key in (
        "wall_seconds",
        "n_dominating",
        "n_regions",
        "n_separating",
        "pairs_considered",
        "n_events",
    ):
        take("build", key)
    for key in ("p50_s", "p99_s", "mean_s"):
        take("query_latency", key)
    for key in (
        "pager_reads",
        "pager_writes",
        "buffer_hits",
        "buffer_misses",
        "index_pages",
        "index_bytes",
    ):
        take("disk", key)
    for name, value in report.get("query_counters", {}).items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            metrics[f"query_counters.{name}"] = float(value)
    for name, summary in report.get("query_series", {}).items():
        dropped = summary.get("dropped") if isinstance(summary, dict) else None
        if isinstance(dropped, (int, float)) and not isinstance(dropped, bool):
            metrics[f"{_DROPPED_PREFIX}{name}{_DROPPED_SUFFIX}"] = float(
                dropped
            )
    return metrics


def _is_gated(name: str) -> bool:
    return name in _GATED_METRICS or name.startswith(_GATED_PREFIXES)


def _is_dropped_gate(name: str) -> bool:
    return name.startswith(_DROPPED_PREFIX) and name.endswith(_DROPPED_SUFFIX)


def compare_reports(
    old: dict,
    new: dict,
    *,
    threshold: float = 1.10,
    gate_time: bool = False,
    time_threshold: float = 2.0,
) -> ReportComparison:
    """Diff two reports; gated counters past ``threshold`` fail the gate.

    ``threshold`` is a ratio: a gated counter regresses when
    ``new > old * threshold`` (old == 0 regresses on any growth).  With
    ``gate_time=True``, wall-clock metrics additionally gate at
    ``time_threshold`` — loose by design, to only catch order-of-
    magnitude slowdowns on noisy runners.
    """
    if threshold < 1.0 or time_threshold < 1.0:
        raise ComparisonError("thresholds are ratios and must be >= 1.0")
    _check_configs(old, new)
    old_metrics = _numeric_metrics(old)
    new_metrics = _numeric_metrics(new)

    deltas: list[MetricDelta] = []
    for name in sorted(set(old_metrics) | set(new_metrics)):
        was = old_metrics.get(name)
        now = new_metrics.get(name)
        dropped_gate = _is_dropped_gate(name) and now is not None
        gated = _is_gated(name) and was is not None and now is not None
        timed = (
            gate_time
            and name in _TIMED_METRICS
            and was is not None
            and now is not None
        )
        regressed = False
        if dropped_gate:
            # Exactness, not growth: any dropped sample in NEW voids the
            # percentile claim even if the baseline dropped just as many.
            regressed = now > 0
        elif gated:
            regressed = now > was * threshold if was else now > 0
        if timed and not regressed:
            regressed = now > was * time_threshold if was else now > 0
        deltas.append(
            MetricDelta(
                name=name,
                old=was,
                new=now,
                gated=gated or timed or dropped_gate,
                regressed=regressed,
            )
        )
    return ReportComparison(
        old_name=str(old.get("config", {}).get("name", "?")),
        new_name=str(new.get("config", {}).get("name", "?")),
        deltas=tuple(deltas),
        threshold=threshold,
        gate_time=gate_time,
        time_threshold=time_threshold,
    )


def _format_value(value: float | None) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _rows(comparison: ReportComparison) -> Iterator[tuple[str, ...]]:
    yield ("metric", "old", "new", "ratio", "")
    for delta in comparison.deltas:
        if delta.ratio is None:
            ratio = "added" if delta.old is None else (
                "removed" if delta.new is None else "-"
            )
        else:
            ratio = f"{delta.ratio:.3f}x"
        flag = "REGRESSED" if delta.regressed else (
            "gated" if delta.gated else ""
        )
        yield (
            delta.name,
            _format_value(delta.old),
            _format_value(delta.new),
            ratio,
            flag,
        )


def render_comparison(comparison: ReportComparison) -> str:
    """A fixed-width table plus the gate verdict."""
    rows = list(_rows(comparison))
    widths = [max(len(row[i]) for row in rows) for i in range(4)]
    lines = [
        f"comparing {comparison.old_name} (old) -> "
        f"{comparison.new_name} (new); counter threshold "
        f"{comparison.threshold:.2f}x"
        + (
            f", time threshold {comparison.time_threshold:.2f}x"
            if comparison.gate_time
            else ", timings informational"
        )
    ]
    for row in rows:
        cells = [row[i].ljust(widths[i]) for i in range(4)]
        line = "  ".join(cells)
        if row[4]:
            line += f"  {row[4]}"
        lines.append(line.rstrip())
    if comparison.ok:
        lines.append("gate: OK")
    else:
        names = ", ".join(d.name for d in comparison.regressions)
        lines.append(f"gate: FAILED ({names})")
    return "\n".join(lines)
