"""The closed-loop serving benchmark: ``python -m repro.bench --serve``.

Boots a real :class:`~repro.serve.QueryServer` over a seeded index,
drives it with ``n_clients`` closed-loop workers (one
:class:`~repro.serve.Client` each, next request only after the previous
response), and reports:

* **throughput** — sustained queries/second across the whole run;
* **latency** — per-request round-trip p50/p99/mean/max;
* **server internals** — queue-depth and coalesced-batch-size series
  plus the lifetime ``serve.*`` counters, straight from the server's
  :class:`~repro.obs.MetricsRecorder`;
* **correctness** — every remote answer is compared against the
  precomputed in-process answer for the same preference; any mismatch
  lands in the *gated* ``query_counters`` section (baseline zero, so
  the CI compare gate fails on the first wrong byte).

A second **chaos phase** reruns the loop against an index slowed
through :class:`repro.faults.LatencyRecorder` behind a deliberately
tiny admission queue, under per-request deadlines.  The contract under
overload: every request resolves to a correct answer *or* a typed
:class:`~repro.errors.ServerOverloadedError` /
:class:`~repro.errors.QueryTimeoutError` — no hung clients, no partial
answers, nothing untyped.  Violations are gated counters too.

Shed/timeout *counts* are timing-dependent, so they live in the
ungated ``serve``/``chaos`` report sections; only the deterministic
zero-on-healthy counters are gated.

Both phases run with end-to-end tracing on: every client carries a
seeded :class:`~repro.obs.TraceIdGenerator`, every response must echo
the request's trace id (``serve.trace_failures``, gated at zero), and
the server must see zero untraced requests (``serve.untraced_requests``,
gated at zero) — proving the trace plumbing costs nothing and loses
nothing under concurrent load.  The load phase also exercises the
``stats`` and ``dump`` admin ops and ships the server's flight-recorder
dump in the report (``python -m repro.bench --serve`` writes it to
``FLIGHT_serve.json`` for the CI failure artifact).
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass

from ..core.index import RankedJoinIndex
from ..core.workloads import random_preferences
from ..errors import (
    QueryTimeoutError,
    ReproError,
    ServerOverloadedError,
)
from ..faults import FaultInjector, FaultPlan, FaultSpec, LatencyRecorder
from ..obs import MetricsRecorder
from ..serve import Client, QueryServer
from .runner import BenchConfig, _make_tuples, _percentiles

__all__ = ["SERVE_CONFIG", "ServeBenchConfig", "run_serve_benchmark"]


@dataclass(frozen=True, slots=True)
class ServeBenchConfig:
    """One fully-seeded serving scenario (load phase + chaos phase)."""

    name: str = "serve"
    dataset: str = "uniform"
    n_tuples: int = 5000
    k_bound: int = 20
    k_query: int = 10
    seed: int = 7
    n_clients: int = 4
    queries_per_client: int = 1000
    queue_bound: int = 1024
    batch_max: int = 64
    #: chaos phase: injected per-query latency, starved queue, deadlines
    chaos_queries_per_client: int = 100
    chaos_queue_bound: int = 2
    chaos_delay_s: float = 0.004
    chaos_deadline_s: float = 0.5


#: The default (and CI smoke) serving scenario.
SERVE_CONFIG = ServeBenchConfig()


def _build_index(config: ServeBenchConfig, recorder=None) -> RankedJoinIndex:
    bench_like = BenchConfig(
        dataset=config.dataset,
        n_tuples=config.n_tuples,
        k_bound=config.k_bound,
        seed=config.seed,
    )
    kwargs = {} if recorder is None else {"recorder": recorder}
    return RankedJoinIndex.build(
        _make_tuples(bench_like), config.k_bound, **kwargs
    )


def _client_workloads(config: ServeBenchConfig, n_queries: int):
    """Per-client preference lists, seeded apart so batches mix clients."""
    return [
        random_preferences(n_queries, seed=config.seed + 101 * (i + 1))
        for i in range(config.n_clients)
    ]


def _reference_answers(index: RankedJoinIndex, workloads, k: int):
    """In-process scalar answers every remote answer must equal."""
    return [
        [index.query(preference, k) for preference in workload]
        for workload in workloads
    ]


def _run_load_phase(config: ServeBenchConfig, index, workloads, references):
    """Closed-loop clients against a healthy server; returns phase stats."""
    metrics = MetricsRecorder()
    latencies: list[list[float]] = [[] for _ in workloads]
    mismatches = [0] * len(workloads)
    trace_failures = [0] * len(workloads)
    failures: list[str] = []
    failures_lock = threading.Lock()

    with QueryServer(
        index,
        port=0,
        queue_bound=config.queue_bound,
        batch_max=config.batch_max,
        recorder=metrics,
        trace_seed=config.seed,
    ) as server:
        host, port = server.address

        def worker(slot: int) -> None:
            try:
                with Client(
                    host, port, trace_seed=config.seed + 1009 * (slot + 1)
                ) as client:
                    expected = references[slot]
                    for qid, preference in enumerate(workloads[slot]):
                        started = time.perf_counter()
                        answer = client.query(preference, config.k_query)
                        latencies[slot].append(
                            time.perf_counter() - started
                        )
                        if answer != expected[qid]:
                            mismatches[slot] += 1
                        # _roundtrip raises on a *wrong* echo; a missing
                        # trace id here means the contract quietly broke.
                        trace = client.last_trace_id
                        if not trace or not trace.startswith("c-"):
                            trace_failures[slot] += 1
            except ReproError as exc:
                with failures_lock:
                    failures.append(f"client {slot}: {exc!r}")

        threads = [
            threading.Thread(
                target=worker, args=(slot,), name=f"bench-client-{slot}"
            )
            for slot in range(config.n_clients)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300.0)
        wall = time.perf_counter() - started
        hung = sum(thread.is_alive() for thread in threads)
        stats = server.stats()
        # The admin ops ride the same wire (and are themselves traced):
        # the rolling-window/flight view a live `repro.obs top` would see.
        with Client(host, port, trace_seed=config.seed + 31) as admin:
            stats_op = admin.stats()
            flight = admin.dump()

    flat = [sample for per_client in latencies for sample in per_client]
    n_done = len(flat)
    snapshot = metrics.snapshot()
    return {
        "wall_seconds": wall,
        "n_queries": n_done,
        "throughput_qps": (n_done / wall) if wall > 0 else 0.0,
        "latency": _percentiles(flat) if flat else {},
        "queue_depth": asdict(metrics.series("serve.queue_depth")),
        "batch_size": asdict(metrics.series("serve.batch_size")),
        "server": stats,
        "counters": snapshot["counters"],
        "mismatches": sum(mismatches),
        "client_failures": failures,
        "hung_clients": hung,
        "trace_failures": sum(trace_failures),
        "untraced_requests": stats_op["lifetime"]["untraced"],
        "window": stats_op["window"],
        "flight_summary": stats_op["flight"],
        "flight": flight,
    }


def _run_chaos_phase(config: ServeBenchConfig, workloads, references):
    """Overload a slowed server; every request must resolve typed."""
    plan = FaultPlan(
        name="serve-slow-index",
        seed=config.seed,
        specs=(
            FaultSpec(
                target="recorder",
                kind="latency",
                every=1,
                delay_s=config.chaos_delay_s,
            ),
        ),
    )
    injector = FaultInjector(plan)
    slow_index = _build_index(config, recorder=LatencyRecorder(injector))
    outcomes = {"ok": 0, "shed": 0, "timeout": 0}
    mismatches = [0] * len(workloads)
    unexpected: list[str] = []
    lock = threading.Lock()

    with QueryServer(
        slow_index,
        port=0,
        queue_bound=config.chaos_queue_bound,
        batch_max=config.batch_max,
    ) as server:
        host, port = server.address

        def worker(slot: int) -> None:
            with Client(
                host, port, trace_seed=config.seed + 2003 * (slot + 1)
            ) as client:
                expected = references[slot]
                n = config.chaos_queries_per_client
                for qid, preference in enumerate(workloads[slot][:n]):
                    try:
                        answer = client.query(
                            preference,
                            config.k_query,
                            deadline=config.chaos_deadline_s,
                        )
                    except ServerOverloadedError:
                        with lock:
                            outcomes["shed"] += 1
                    except QueryTimeoutError:
                        with lock:
                            outcomes["timeout"] += 1
                    except Exception as exc:
                        # The contract under test is "typed errors
                        # only"; anything else is the violation being
                        # counted.
                        with lock:
                            unexpected.append(
                                f"client {slot} query {qid}: {exc!r}"
                            )
                    else:
                        with lock:
                            outcomes["ok"] += 1
                        if answer != expected[qid]:
                            mismatches[slot] += 1

        threads = [
            threading.Thread(
                target=worker, args=(slot,), name=f"chaos-client-{slot}"
            )
            for slot in range(config.n_clients)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300.0)
        wall = time.perf_counter() - started
        hung = sum(thread.is_alive() for thread in threads)
        stats = server.stats()
        # Shed/timed-out requests make this the flight recorder's
        # worst-case diet: every non-ok outcome retains its detail.
        flight_summary = server.flight.summary()

    return {
        "wall_seconds": wall,
        "outcomes": outcomes,
        "faults_injected": injector.n_injected,
        "server": stats,
        "flight_summary": flight_summary,
        "mismatches": sum(mismatches),
        "unexpected_errors": unexpected,
        "hung_clients": hung,
    }


def run_serve_benchmark(config: ServeBenchConfig = SERVE_CONFIG) -> dict:
    """Run the serving scenario; returns the JSON-ready report.

    The ``query_counters`` section carries only values that are
    deterministic for a seeded config (and zero on healthy serving), so
    the standard ``--compare`` gate applies unchanged.  Timing-shaped
    observations (throughput, shed counts, batch sizes) are reported
    but never gated.
    """
    index = _build_index(config)
    workloads = _client_workloads(config, config.queries_per_client)
    references = _reference_answers(index, workloads, config.k_query)

    load = _run_load_phase(config, index, workloads, references)
    chaos = _run_chaos_phase(config, workloads, references)

    # The full flight dump is bulky and timing-shaped; keep it out of
    # the committed report sections.  `python -m repro.bench --serve`
    # pops it into FLIGHT_serve.json for the CI failure artifact.
    flight = load.pop("flight")

    return {
        "schema_version": 1,
        "config": asdict(config),
        "serve": load,
        "chaos": chaos,
        "flight": flight,
        "query_counters": {
            "serve.mismatches": load["mismatches"],
            "serve.client_failures": len(load["client_failures"]),
            "serve.hung_clients": load["hung_clients"],
            "serve.trace_failures": load["trace_failures"],
            "serve.untraced_requests": load["untraced_requests"],
            "serve.chaos_mismatches": chaos["mismatches"],
            "serve.chaos_unexpected_errors": len(
                chaos["unexpected_errors"]
            ),
            "serve.chaos_hung_clients": chaos["hung_clients"],
        },
    }
