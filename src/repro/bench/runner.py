"""The reproducible benchmark runner.

One :func:`run_benchmark` call measures a seeded workload end to end:

1. **build** — construct the index under a
   :class:`~repro.obs.MetricsRecorder`, capturing the Figure-14 phase
   breakdown (tDom / tSep / tBLoad) and the paper's cost counters
   (pairs considered, events, regions);
2. **query latency** — run the workload against an *uninstrumented*
   index (``NULL_RECORDER``) and report p50/p99/mean wall-clock;
3. **query counters** — replay the same workload under the metrics
   recorder for B+-tree descent depth, regions touched, and tuples
   evaluated per query;
4. **disk** — serialize through :mod:`repro.storage` and replay again
   for page-I/O counters and the buffer-pool hit rate;
5. **cold open** — save the disk image to a scratch file and time
   eager open vs zero-copy (mmap) open through to the *first answer*,
   asserting the answers are bit-identical either way;
6. **overhead** — compare per-query time with and without the recorder,
   asserting results stay bit-identical either way.

Everything is seeded, so two runs of the same config produce the same
counters (timings vary, counters must not).  Results serialize to
``BENCH_<name>.json``; the schema is documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from ..core.index import RankedJoinIndex
from ..core.workloads import random_preferences
from ..datagen.synthetic import (
    correlated_pairs,
    gaussian_pairs,
    uniform_pairs,
)
from ..errors import ConstructionError
from ..obs import (
    JsonlRecorder,
    MetricsRecorder,
    Recorder,
    TeeRecorder,
    write_chrome_trace,
)
from ..storage.diskindex import DiskRankedJoinIndex

__all__ = [
    "BUILD_HEAVY_CONFIG",
    "BenchConfig",
    "SMOKE_CONFIG",
    "run_benchmark",
    "write_report",
]


@dataclass(frozen=True, slots=True)
class BenchConfig:
    """One fully-seeded benchmark scenario."""

    name: str = "smoke"
    dataset: str = "uniform"
    n_tuples: int = 2000
    k_bound: int = 20
    k_query: int = 10
    n_queries: int = 200
    seed: int = 7
    variant: str = "standard"
    merge_slack: int = 0
    page_size: int = 4096
    buffer_capacity: int = 16
    workers: int = 1
    block_rows: int = 512
    worker_mode: str = "thread"
    cache_size: int = 0


#: The CI smoke scenario: small enough for seconds, large enough that
#: every counter in the report is non-trivial.
SMOKE_CONFIG = BenchConfig()

#: The construction-dominated scenario: an anti-correlated population
#: (dominating set near Lemma 1's worst case) with a large K, so the
#: event sweep — not the query loop — is where the time goes.
BUILD_HEAVY_CONFIG = BenchConfig(
    name="build_heavy",
    dataset="anticorrelated",
    n_tuples=20_000,
    k_bound=80,
    k_query=20,
    n_queries=500,
    seed=11,
)


def _make_tuples(config: BenchConfig):
    if config.dataset == "uniform":
        return uniform_pairs(config.n_tuples, seed=config.seed)
    if config.dataset == "gauss":
        return gaussian_pairs(config.n_tuples, seed=config.seed)
    if config.dataset == "correlated":
        return correlated_pairs(config.n_tuples, rho=0.7, seed=config.seed)
    if config.dataset == "anticorrelated":
        return correlated_pairs(config.n_tuples, rho=-0.6, seed=config.seed)
    raise ConstructionError(f"unknown benchmark dataset {config.dataset!r}")


def _percentiles(samples: list[float]) -> dict[str, float]:
    array = np.asarray(samples, dtype=np.float64)
    return {
        "p50_s": float(np.percentile(array, 50)),
        "p99_s": float(np.percentile(array, 99)),
        "mean_s": float(array.mean()),
        "max_s": float(array.max()),
    }


def _warmup(index: RankedJoinIndex, preferences, k: int) -> None:
    """Untimed full pass so timed passes compare like for like.

    The first visit to each region pays one-off costs (allocator churn
    from the preceding build, cold caches); a partial warmup leaves a
    heavy tail in whichever timed pass runs first.
    """
    for preference in preferences:
        index.query(preference, k)


def _timed_queries(index: RankedJoinIndex, preferences, k: int):
    """Per-query wall-clock latencies plus the answers themselves."""
    latencies: list[float] = []
    answers = []
    for preference in preferences:
        started = time.perf_counter()
        answers.append(index.query(preference, k))
        latencies.append(time.perf_counter() - started)
    return latencies, answers


def run_benchmark(
    config: BenchConfig = SMOKE_CONFIG,
    *,
    trace_path: str | Path | None = None,
    log_path: str | Path | None = None,
) -> dict:
    """Run one scenario and return the JSON-ready report dictionary.

    ``trace_path`` additionally writes every completed span (build
    phases, SQL-free here, plus the disk replay) as a Chrome trace-event
    file; ``log_path`` tees a :class:`~repro.obs.JsonlRecorder` into the
    instrumented passes, streaming each recorder event as one JSON line.
    Both exporters only *watch*: the gated counters of the report are
    identical with or without them (the overhead section reflects the
    extra logging cost when a log is attached).
    """
    tuples = _make_tuples(config)
    preferences = random_preferences(config.n_queries, seed=config.seed + 1)

    log_recorder = (
        JsonlRecorder(log_path) if log_path is not None else None
    )

    def instrument(metrics: MetricsRecorder) -> Recorder:
        if log_recorder is None:
            return metrics
        return TeeRecorder(metrics, log_recorder)

    # -- build (instrumented) ---------------------------------------------
    build_recorder = MetricsRecorder()
    started = time.perf_counter()
    instrumented = RankedJoinIndex.build(
        tuples,
        config.k_bound,
        variant=config.variant,
        merge_slack=config.merge_slack,
        block_rows=config.block_rows,
        workers=config.workers,
        worker_mode=config.worker_mode,
        recorder=instrument(build_recorder),
    )
    build_seconds = time.perf_counter() - started
    stats = instrumented.stats

    # -- query latency (uninstrumented: what a user pays) ------------------
    plain = RankedJoinIndex.build(
        tuples,
        config.k_bound,
        variant=config.variant,
        merge_slack=config.merge_slack,
        block_rows=config.block_rows,
        workers=config.workers,
        worker_mode=config.worker_mode,
    )
    _warmup(plain, preferences, config.k_query)
    null_latencies, null_answers = _timed_queries(
        plain, preferences, config.k_query
    )

    # -- query counters (instrumented replay) ------------------------------
    _warmup(instrumented, preferences, config.k_query)
    # Build spans die with the reset below; keep them for the trace file.
    build_spans = list(build_recorder.spans)
    build_recorder.reset()
    metric_latencies, metric_answers = _timed_queries(
        instrumented, preferences, config.k_query
    )
    if metric_answers != null_answers:
        raise ConstructionError(
            "recorder changed query answers; observability must be inert"
        )
    query_counters = build_recorder.snapshot()

    # -- disk replay: page I/O, buffer hit rate, descent depth -------------
    disk_recorder = MetricsRecorder()
    disk = DiskRankedJoinIndex(
        plain,
        page_size=config.page_size,
        buffer_capacity=config.buffer_capacity,
        recorder=instrument(disk_recorder),
    )
    disk.reset_io()
    for preference in preferences:
        disk.query(preference, config.k_query)
    disk_summary = {
        "btree_descent_nodes": asdict(disk_recorder.series("disk.btree_nodes")),
        "pages_read_per_query": asdict(disk_recorder.series("disk.pages_read")),
        "tuples_evaluated": asdict(
            disk_recorder.series("disk.tuples_evaluated")
        ),
        "pager_reads": disk.pager.counters.reads,
        "pager_writes": disk.pager.counters.writes,
        "buffer_hits": disk.pool.hits,
        "buffer_misses": disk.pool.misses,
        "buffer_hit_rate": disk.pool.hit_rate,
        "index_pages": disk.stats.total_pages,
        "index_bytes": disk.stats.total_bytes,
    }

    # -- cold open: eager vs zero-copy startup latency ---------------------
    cold_open = _cold_open_metrics(disk, preferences[0], config.k_query)

    # -- recorder overhead --------------------------------------------------
    # Medians, not means: a single GC pause or scheduler hiccup in one
    # pass would otherwise swamp the per-query instrumentation cost.
    null_median = float(np.median(null_latencies))
    metric_median = float(np.median(metric_latencies))
    overhead = {
        "null_median_s": null_median,
        "metrics_median_s": metric_median,
        "metrics_over_null": (
            metric_median / null_median if null_median else 1.0
        ),
    }

    if trace_path is not None:
        write_chrome_trace(
            trace_path,
            build_spans + build_recorder.spans + disk_recorder.spans,
            process_name=f"repro.bench:{config.name}",
        )
    if log_recorder is not None:
        log_recorder.close()

    return {
        "schema_version": 1,
        "config": asdict(config),
        "build": {
            "wall_seconds": build_seconds,
            "time_dominating_s": stats.time_dominating,
            "time_separating_s": stats.time_separating,
            "time_load_s": stats.time_load,
            "n_input": stats.n_input,
            "n_dominating": stats.n_dominating,
            "n_regions": stats.n_regions,
            "n_separating": stats.n_separating,
            "pairs_considered": stats.pairs_considered,
            "n_events": stats.n_events,
        },
        "query_latency": _percentiles(null_latencies),
        "query_counters": query_counters["counters"],
        "query_series": query_counters["series"],
        "disk": disk_summary,
        "cold_open": cold_open,
        "overhead": overhead,
    }


def _cold_open_metrics(
    disk: DiskRankedJoinIndex, preference, k: int
) -> dict:
    """Time eager vs mmap open of the same saved image to first answer.

    Timings live outside the gated sections (``repro.bench.compare``
    flattens only build / query_latency / disk / query_counters), so
    machine-speed variance here never trips the regression gate — but
    the answers themselves must match bit for bit, checked right here.
    """
    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / "cold_open.rji"
        disk.save(path)
        file_bytes = path.stat().st_size

        started = time.perf_counter()
        eager = DiskRankedJoinIndex.open(path)
        eager_open_s = time.perf_counter() - started
        eager_answer = eager.query(preference, k)
        eager_first_answer_s = time.perf_counter() - started

        started = time.perf_counter()
        mapped = DiskRankedJoinIndex.open(path, mmap=True)
        mmap_open_s = time.perf_counter() - started
        mapped_answer = mapped.query(preference, k)
        mmap_first_answer_s = time.perf_counter() - started

        if mapped_answer != eager_answer:
            raise ConstructionError(
                "zero-copy open changed query answers; mmap must be "
                "bit-identical to the eager path"
            )
        close = getattr(mapped.pager, "close", None)
        if close is not None:
            close()
    return {
        "file_bytes": file_bytes,
        "eager_open_s": eager_open_s,
        "eager_first_answer_s": eager_first_answer_s,
        "mmap_open_s": mmap_open_s,
        "mmap_first_answer_s": mmap_first_answer_s,
        "open_speedup": (
            eager_open_s / mmap_open_s if mmap_open_s > 0 else float("inf")
        ),
    }


def write_report(report: dict, out_dir: str | Path = ".") -> Path:
    """Write ``report`` to ``BENCH_<name>.json`` under ``out_dir``."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{report['config']['name']}.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path
