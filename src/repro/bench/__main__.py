"""``python -m repro.bench`` — run a benchmark scenario or compare two.

The CI smoke job runs ``python -m repro.bench --smoke`` and then gates
the fresh report against the committed baseline with
``python -m repro.bench --compare benchmarks/BENCH_baseline_smoke.json
BENCH_smoke.json``; a non-zero exit means a gated counter regressed
past the threshold.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace

from .compare import (
    ComparisonError,
    compare_reports,
    load_report,
    render_comparison,
)
from .runner import (
    BUILD_HEAVY_CONFIG,
    SMOKE_CONFIG,
    BenchConfig,
    run_benchmark,
    write_report,
)

__all__ = ["main"]


def _run_compare(args: argparse.Namespace) -> int:
    old_path, new_path = args.compare
    try:
        comparison = compare_reports(
            load_report(old_path),
            load_report(new_path),
            threshold=args.threshold,
            gate_time=args.gate_time,
            time_threshold=args.time_threshold,
        )
    except ComparisonError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_comparison(comparison))
    return 0 if comparison.ok else 1


def _run_chaos(args: argparse.Namespace) -> int:
    from ..faults import FaultPlanError
    from .chaos import load_plan, run_chaos_benchmark

    try:
        plan = load_plan(args.faults)
    except (FaultPlanError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    name = args.name or f"faults_{plan.name}"
    if args.mmap and args.name is None:
        name += "_mmap"
    config = replace(
        SMOKE_CONFIG,
        name=name,
        seed=args.seed,
        workers=args.workers,
        block_rows=args.block_rows,
        cache_size=args.cache_size,
    )
    report = run_chaos_benchmark(plan, config, mmap=args.mmap)
    path = write_report(report, args.out)
    summary = {
        "report": str(path),
        "plan": plan.name,
        "mmap": args.mmap,
        "faults_injected": report["faults_injected"],
        "disk_queries": report["health"]["resilience.disk_queries"],
        "degraded": report["health"]["resilience.degraded"],
        "retries": report["health"]["resilience.retries"],
        "breaker_trips": report["health"]["resilience.trips"],
    }
    if report["degraded_latency"]:
        summary["degraded_p50_us"] = round(
            report["degraded_latency"]["p50_s"] * 1e6, 1
        )
    if report["disk_latency"]:
        summary["disk_p50_us"] = round(
            report["disk_latency"]["p50_s"] * 1e6, 1
        )
    print(json.dumps(summary))
    return 0


def _run_open(args: argparse.Namespace) -> int:
    from .openbench import OPEN_CONFIG, run_open_benchmark

    config = replace(
        OPEN_CONFIG,
        name=args.name or OPEN_CONFIG.name,
        seed=args.seed if args.seed != SMOKE_CONFIG.seed else OPEN_CONFIG.seed,
        workers=args.workers,
        worker_mode=args.worker_mode,
        block_rows=args.block_rows,
        cache_size=args.cache_size or OPEN_CONFIG.cache_size,
    )
    report = run_open_benchmark(config)
    path = write_report(report, args.out)
    open_section = report["open"]
    summary = {
        "report": str(path),
        "file_bytes": open_section["file_bytes"],
        "eager_open_ms": round(open_section["eager_open_s"] * 1e3, 3),
        "mmap_open_ms": round(open_section["mmap_open_s"] * 1e3, 3),
        "open_speedup": round(open_section["open_speedup"], 1),
        "cache_hits": report["cache"]["hits"],
        "cache_misses": report["cache"]["misses"],
    }
    print(json.dumps(summary))
    return 0


def _run_mixed(args: argparse.Namespace) -> int:
    from .mixed import MIXED_CONFIG, run_mixed_benchmark

    config = replace(
        MIXED_CONFIG,
        name=args.name or MIXED_CONFIG.name,
        seed=args.seed if args.seed != SMOKE_CONFIG.seed else MIXED_CONFIG.seed,
    )
    report = run_mixed_benchmark(config)
    path = write_report(report, args.out)
    mixed = report["mixed"]
    summary = {
        "report": str(path),
        "ops_per_second": round(mixed["ops_per_second"], 1),
        "read_p99_us": round(report["query_latency"]["p99_s"] * 1e6, 1),
        "write_p99_us": round(mixed["write_latency"]["p99_s"] * 1e6, 1),
        "compactions": mixed["compaction_pauses"],
        "compaction_pause_max_ms": round(
            mixed["compaction_pause_max_s"] * 1e3, 3
        ),
        "mismatches": report["query_counters"]["mixed.mismatches"],
        "recovered_mismatches": report["query_counters"][
            "mixed.recovered_mismatches"
        ],
    }
    print(json.dumps(summary))
    correctness = (
        report["query_counters"]["mixed.mismatches"]
        + report["query_counters"]["mixed.recovered_mismatches"]
        + report["query_counters"]["mixed.recovered_pool_drift"]
        + report["query_counters"]["mixed.recovery_torn_tails"]
    )
    if correctness:
        print(
            f"error: mixed write path served wrong answers "
            f"({report['query_counters']})",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_recovery(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .recovery import RECOVERY_CONFIG, run_recovery_benchmark

    config = replace(
        RECOVERY_CONFIG,
        name=args.name or RECOVERY_CONFIG.name,
        seed=args.seed
        if args.seed != SMOKE_CONFIG.seed
        else RECOVERY_CONFIG.seed,
        mmap=args.mmap,
    )
    report = run_recovery_benchmark(config)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"RECOVERY_{config.name}.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    summary = {
        "report": str(path),
        "mmap": config.mmap,
        "scenarios": len(report["scenarios"]),
        "violations": report["n_violations"],
    }
    print(json.dumps(summary))
    if report["n_violations"]:
        for violation in report["violations"]:
            print(f"error: {violation}", file=sys.stderr)
        return 1
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .serve import SERVE_CONFIG, run_serve_benchmark

    config = replace(
        SERVE_CONFIG,
        name=args.name or SERVE_CONFIG.name,
        seed=args.seed,
        n_clients=args.clients,
        queries_per_client=args.queries_per_client,
        queue_bound=args.queue_bound,
    )
    report = run_serve_benchmark(config)
    # The flight dump is a debugging artifact, not a gated metric:
    # write it next to the report (CI uploads it on failure) and keep
    # the committed BENCH report free of per-request latency noise.
    flight = report.pop("flight")
    flight_path = Path(args.out) / "FLIGHT_serve.json"
    flight_path.parent.mkdir(parents=True, exist_ok=True)
    flight_path.write_text(json.dumps(flight, indent=2, sort_keys=True))
    path = write_report(report, args.out)
    serve = report["serve"]
    chaos = report["chaos"]
    summary = {
        "report": str(path),
        "flight": str(flight_path),
        "throughput_qps": round(serve["throughput_qps"], 1),
        "p50_us": round(serve["latency"]["p50_s"] * 1e6, 1),
        "p99_us": round(serve["latency"]["p99_s"] * 1e6, 1),
        "batches": serve["server"]["batches"],
        "mismatches": serve["mismatches"],
        "trace_failures": serve["trace_failures"],
        "untraced": serve["untraced_requests"],
        "chaos_ok": chaos["outcomes"]["ok"],
        "chaos_shed": chaos["outcomes"]["shed"],
        "chaos_timeout": chaos["outcomes"]["timeout"],
        "chaos_unexpected": len(chaos["unexpected_errors"]),
    }
    print(json.dumps(summary))
    contract_violations = sum(report["query_counters"].values())
    if contract_violations:
        print(
            "error: serving contract violated "
            f"({report['query_counters']})",
            file=sys.stderr,
        )
        return 1
    if args.min_qps and serve["throughput_qps"] < args.min_qps:
        print(
            f"error: throughput {serve['throughput_qps']:.0f} q/s below "
            f"the --min-qps floor of {args.min_qps:.0f}",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Seeded Ranked-Join-Index benchmark harness.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the small CI smoke scenario (overrides the size flags)",
    )
    parser.add_argument(
        "--build-heavy",
        action="store_true",
        help="run the construction-dominated scenario (overrides size flags)",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="run the closed-loop serving scenario (QueryServer + "
        "multi-client load generator + chaos overload phase)",
    )
    parser.add_argument(
        "--open-zero-copy",
        action="store_true",
        help="run the cold-open scenario: eager vs mmap open latency "
        "plus the hot-region cache under a skewed workload",
    )
    parser.add_argument(
        "--mixed",
        action="store_true",
        help="run the mixed read/write scenario: zipf reads over a "
        "durable index taking a steady WAL-backed insert/delete stream "
        "(reports write p99 and compaction pauses, gates correctness)",
    )
    parser.add_argument(
        "--recovery",
        action="store_true",
        help="run every crash-recovery chaos scenario (kill during "
        "append/commit/apply/compaction, torn WAL tail) and verify the "
        "durability contract; writes RECOVERY_<name>.json, exit 1 on "
        "any violation",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=4,
        help="closed-loop client workers for --serve (default 4)",
    )
    parser.add_argument(
        "--queries-per-client",
        type=int,
        default=1000,
        help="queries each --serve client issues (default 1000)",
    )
    parser.add_argument(
        "--queue-bound",
        type=int,
        default=1024,
        help="server admission-queue bound for --serve (default 1024)",
    )
    parser.add_argument(
        "--min-qps",
        type=float,
        default=0.0,
        help="fail --serve when sustained throughput drops below this "
        "floor (default 0: report only)",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD", "NEW"),
        help="diff two BENCH_*.json reports and gate on counter regressions "
        "(exit 1 past --threshold, exit 2 on unusable inputs)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="run the chaos smoke scenario under a fault plan (a built-in "
        "name such as 'transient-reads', 'storm', 'bitrot', 'slow-disk', "
        "or a path to a FaultPlan JSON)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.10,
        help="counter regression ratio for --compare (default 1.10)",
    )
    parser.add_argument(
        "--gate-time",
        action="store_true",
        help="also gate wall-clock metrics in --compare (off by default; "
        "timings are noisy on shared runners)",
    )
    parser.add_argument(
        "--time-threshold",
        type=float,
        default=2.0,
        help="wall-clock regression ratio when --gate-time is set",
    )
    parser.add_argument("--name", default=None, help="scenario/report name")
    parser.add_argument(
        "--dataset",
        default=SMOKE_CONFIG.dataset,
        choices=("uniform", "gauss", "correlated", "anticorrelated"),
    )
    parser.add_argument("--n-tuples", type=int, default=20_000)
    parser.add_argument("--k-bound", type=int, default=50)
    parser.add_argument("--k-query", type=int, default=10)
    parser.add_argument("--n-queries", type=int, default=1_000)
    parser.add_argument("--seed", type=int, default=SMOKE_CONFIG.seed)
    parser.add_argument(
        "--variant", default="standard", choices=("standard", "ordered")
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="workers for the separating-event pass (1 = sequential)",
    )
    parser.add_argument(
        "--worker-mode",
        default="thread",
        choices=("thread", "process"),
        help="event-pass worker kind: 'thread' (GIL-bound, zero setup) "
        "or 'process' (shared-memory pool; sidesteps the GIL)",
    )
    parser.add_argument(
        "--block-rows",
        type=int,
        default=512,
        help="row-block granularity of the event pass",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=0,
        help="hot-region cache capacity for query passes (0 = disabled)",
    )
    parser.add_argument(
        "--mmap",
        action="store_true",
        help="for --faults: reopen the index zero-copy (mmap) before "
        "arming the plan, chaos-testing the memory-mapped read path",
    )
    parser.add_argument("--out", default=".", help="report output directory")
    parser.add_argument(
        "--trace",
        default=None,
        metavar="OUT.json",
        help="write all completed spans as a Chrome trace-event file "
        "(render with `python -m repro.obs render-trace OUT.json`)",
    )
    parser.add_argument(
        "--log",
        default=None,
        metavar="OUT.jsonl",
        help="stream every recorder event of the instrumented passes "
        "to a JSONL log",
    )
    args = parser.parse_args(argv)

    if args.compare:
        return _run_compare(args)
    if args.smoke and args.build_heavy:
        parser.error("--smoke and --build-heavy are mutually exclusive")
    if args.serve:
        return _run_serve(args)
    if args.open_zero_copy:
        return _run_open(args)
    if args.mixed:
        return _run_mixed(args)
    if args.recovery:
        return _run_recovery(args)
    if args.faults is not None:
        return _run_chaos(args)

    if args.smoke or args.build_heavy:
        base = SMOKE_CONFIG if args.smoke else BUILD_HEAVY_CONFIG
        config = replace(
            base,
            seed=args.seed if args.seed != SMOKE_CONFIG.seed else base.seed,
            workers=args.workers,
            worker_mode=args.worker_mode,
            block_rows=args.block_rows,
        )
        if args.name is not None:
            config = replace(config, name=args.name)
    else:
        config = BenchConfig(
            name=args.name or "custom",
            dataset=args.dataset,
            n_tuples=args.n_tuples,
            k_bound=args.k_bound,
            k_query=args.k_query,
            n_queries=args.n_queries,
            seed=args.seed,
            variant=args.variant,
            workers=args.workers,
            worker_mode=args.worker_mode,
            block_rows=args.block_rows,
            cache_size=args.cache_size,
        )

    report = run_benchmark(
        config, trace_path=args.trace, log_path=args.log
    )
    path = write_report(report, args.out)

    latency = report["query_latency"]
    summary = {
        "report": str(path),
        "build_s": round(report["build"]["wall_seconds"], 4),
        "p50_us": round(latency["p50_s"] * 1e6, 1),
        "p99_us": round(latency["p99_s"] * 1e6, 1),
        "regions": report["build"]["n_regions"],
        "recorder_overhead": round(
            report["overhead"]["metrics_over_null"], 3
        ),
    }
    print(json.dumps(summary))
    return 0


if __name__ == "__main__":
    sys.exit(main())
