"""``python -m repro.bench`` — run a benchmark scenario and write the report.

The CI smoke job runs ``python -m repro.bench --smoke`` and uploads the
resulting ``BENCH_smoke.json`` as a build artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace

from .runner import SMOKE_CONFIG, BenchConfig, run_benchmark, write_report

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Seeded Ranked-Join-Index benchmark harness.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the small CI smoke scenario (overrides the size flags)",
    )
    parser.add_argument("--name", default=None, help="scenario/report name")
    parser.add_argument(
        "--dataset",
        default=SMOKE_CONFIG.dataset,
        choices=("uniform", "gauss", "correlated"),
    )
    parser.add_argument("--n-tuples", type=int, default=20_000)
    parser.add_argument("--k-bound", type=int, default=50)
    parser.add_argument("--k-query", type=int, default=10)
    parser.add_argument("--n-queries", type=int, default=1_000)
    parser.add_argument("--seed", type=int, default=SMOKE_CONFIG.seed)
    parser.add_argument(
        "--variant", default="standard", choices=("standard", "ordered")
    )
    parser.add_argument("--out", default=".", help="report output directory")
    args = parser.parse_args(argv)

    if args.smoke:
        config = replace(SMOKE_CONFIG, seed=args.seed)
        if args.name is not None:
            config = replace(config, name=args.name)
    else:
        config = BenchConfig(
            name=args.name or "custom",
            dataset=args.dataset,
            n_tuples=args.n_tuples,
            k_bound=args.k_bound,
            k_query=args.k_query,
            n_queries=args.n_queries,
            seed=args.seed,
            variant=args.variant,
        )

    report = run_benchmark(config)
    path = write_report(report, args.out)

    latency = report["query_latency"]
    summary = {
        "report": str(path),
        "build_s": round(report["build"]["wall_seconds"], 4),
        "p50_us": round(latency["p50_s"] * 1e6, 1),
        "p99_us": round(latency["p99_s"] * 1e6, 1),
        "regions": report["build"]["n_regions"],
        "recorder_overhead": round(
            report["overhead"]["metrics_over_null"], 3
        ),
    }
    print(json.dumps(summary))
    return 0


if __name__ == "__main__":
    sys.exit(main())
