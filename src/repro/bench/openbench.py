"""The zero-copy open scenario: cold-start latency and the hot cache.

``python -m repro.bench --open-zero-copy`` measures the two costs the
PR-8 perf work attacks:

1. **cold open** — a build-heavy-sized index is saved once, then opened
   repeatedly both ways: *eager* (``Pager.load``: read the whole file,
   verify every page CRC up front) and *zero-copy*
   (``MappedPager.map``: mmap the file, verify the header, defer each
   page's CRC to first touch).  Open latency is reported as the median
   of several repetitions — the acceptance criterion is an
   order-of-magnitude ``open_speedup``;
2. **hot-region cache** — a deterministic *skewed* workload (a few
   distinct preference angles, zipf-weighted repetition from one seeded
   draw) runs against the mmap-opened index with ``cache_size > 0``
   under a :class:`~repro.obs.MetricsRecorder`.  The ``rji.cache.*``
   counters land in the gated ``query_counters`` section, so a change
   that silently stops hitting the cache fails the CI compare gate.

Bit-identity is asserted in-loop: every answer from the mmap + cached
path must equal both the eager disk path and the in-memory scalar
index, tuple for tuple.

Timings live in the ungated ``open`` section (``repro.bench.compare``
flattens only build / query_latency / disk / query_counters), so
machine noise never trips the gate; the counters do the gating.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import asdict, replace
from pathlib import Path

import numpy as np

from ..core.index import RankedJoinIndex
from ..core.workloads import random_preferences
from ..obs import MetricsRecorder
from ..storage.diskindex import DiskRankedJoinIndex
from .runner import BUILD_HEAVY_CONFIG, BenchConfig, _make_tuples

__all__ = ["OPEN_CONFIG", "run_open_benchmark"]

#: The zero-copy open scenario: the build-heavy population (a large
#: saved image, so eager open has real work to skip) plus a hot-region
#: cache sized well below the distinct-angle count of the workload.
OPEN_CONFIG = replace(
    BUILD_HEAVY_CONFIG,
    name="open",
    n_queries=400,
    cache_size=64,
)

#: Repetitions per open mode; the median absorbs one-off page-cache
#: or allocator hiccups without hiding a real regression.
_OPEN_REPS = 5

#: Distinct preference angles in the skewed workload.  More than the
#: default cache capacity would make eviction counters trivial; fewer
#: would make hits trivial.  32 distinct over 64 slots exercises hits
#: without evictions at the default config, and evictions as soon as a
#: caller shrinks ``cache_size`` below 32.
_N_DISTINCT = 32


def _skewed_preferences(config: BenchConfig) -> list:
    """A zipf-weighted repetition of a few distinct angles, seeded."""
    distinct = random_preferences(_N_DISTINCT, seed=config.seed + 1)
    weights = 1.0 / np.arange(1, _N_DISTINCT + 1, dtype=np.float64)
    weights /= weights.sum()
    rng = np.random.default_rng(config.seed + 2)
    picks = rng.choice(_N_DISTINCT, size=config.n_queries, p=weights)
    return [distinct[int(i)] for i in picks]


def _median_open_s(path: Path, *, mmap: bool) -> float:
    samples = []
    for _ in range(_OPEN_REPS):
        started = time.perf_counter()
        index = DiskRankedJoinIndex.open(path, mmap=mmap)
        samples.append(time.perf_counter() - started)
        close = getattr(index.pager, "close", None)
        if close is not None:
            close()
    return float(np.median(samples))


def run_open_benchmark(config: BenchConfig = OPEN_CONFIG) -> dict:
    """Run the open scenario and return the JSON-ready report dict."""
    tuples = _make_tuples(config)
    preferences = _skewed_preferences(config)

    started = time.perf_counter()
    index = RankedJoinIndex.build(
        tuples,
        config.k_bound,
        variant=config.variant,
        merge_slack=config.merge_slack,
        block_rows=config.block_rows,
        workers=config.workers,
        worker_mode=config.worker_mode,
    )
    build_seconds = time.perf_counter() - started
    stats = index.stats

    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / "open.rji"
        DiskRankedJoinIndex(
            index,
            page_size=config.page_size,
            buffer_capacity=config.buffer_capacity,
        ).save(path)
        file_bytes = path.stat().st_size

        eager_open_s = _median_open_s(path, mmap=False)
        mmap_open_s = _median_open_s(path, mmap=True)

        # Time-to-first-answer on fresh opens of each kind.
        started = time.perf_counter()
        eager = DiskRankedJoinIndex.open(path)
        eager.query(preferences[0], config.k_query)
        eager_first_answer_s = time.perf_counter() - started

        recorder = MetricsRecorder()
        started = time.perf_counter()
        mapped = DiskRankedJoinIndex.open(
            path,
            mmap=True,
            cache_size=config.cache_size,
            recorder=recorder,
        )
        mapped.query(preferences[0], config.k_query)
        mmap_first_answer_s = time.perf_counter() - started

        # The skewed workload, counted; every answer triple-checked.
        mapped.reset_io()
        recorder.reset()
        mismatches = 0
        for preference in preferences:
            answer = mapped.query(preference, config.k_query)
            if answer != eager.query(preference, config.k_query):
                mismatches += 1
            elif answer != index.query(preference, config.k_query):
                mismatches += 1
        if mismatches:
            raise AssertionError(
                f"{mismatches} answers from the mmap + cached path "
                "differ from the eager/in-memory paths; zero-copy must "
                "be bit-identical"
            )
        query_counters = recorder.snapshot()["counters"]
        cache = mapped.cache
        assert cache is not None  # config.cache_size > 0
        cache_summary = cache.snapshot()
        disk_summary = {
            "pager_reads": mapped.pager.counters.reads,
            "index_pages": mapped.stats.total_pages,
            "index_bytes": mapped.stats.total_bytes,
        }
        close = getattr(mapped.pager, "close", None)
        if close is not None:
            close()

    return {
        "schema_version": 1,
        "config": asdict(config),
        "build": {
            "wall_seconds": build_seconds,
            "n_input": stats.n_input,
            "n_dominating": stats.n_dominating,
            "n_regions": stats.n_regions,
            "n_separating": stats.n_separating,
            "pairs_considered": stats.pairs_considered,
            "n_events": stats.n_events,
        },
        "open": {
            "file_bytes": file_bytes,
            "eager_open_s": eager_open_s,
            "mmap_open_s": mmap_open_s,
            "eager_first_answer_s": eager_first_answer_s,
            "mmap_first_answer_s": mmap_first_answer_s,
            "open_speedup": (
                eager_open_s / mmap_open_s
                if mmap_open_s > 0
                else float("inf")
            ),
        },
        "query_counters": query_counters,
        "cache": cache_summary,
        "disk": disk_summary,
        "answers_match_eager_and_memory": True,
    }
