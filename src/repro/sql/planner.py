"""Query planning: route top-k join queries to a Ranked Join Index.

The planner recognizes the paper's target query shape —

    SELECT ... FROM l JOIN r ON l.key = r.key
    ORDER BY w1 * l.rank1 + w2 * r.rank2 DESC
    LIMIT k

— and serves it from a matching ranked join index when one exists, the
weights are non-negative (the index covers exactly the monotone linear
class L), and ``k`` does not exceed the index's construction bound.
Everything else falls back to a join-filter-sort pipeline, so every
query is answerable; EXPLAIN shows which route was taken.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..core.pruning import decode_rid_pair
from ..core.scoring import Preference
from ..errors import SchemaError
from ..obs import NULL_RECORDER, Recorder
from ..relalg.database import Database, RankedJoinIndexDef
from ..relalg.relation import Relation
from .ast import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    Expr,
    NumberLit,
    SelectStmt,
    UnaryOp,
)
from .executor import (
    Resolver,
    evaluate,
    flatten_join,
    project_columns,
    sort_rows,
)
from .tokens import SqlSyntaxError

__all__ = [
    "Plan",
    "plan_select",
    "linear_weights",
    "project_columns_for_select",
]


@dataclass
class Plan:
    """An executable plan with a human-readable description.

    Index-served plans carry their route metadata (``index_name``,
    ``index_kind``, ``preference``, ``limit``) so the SQL layer's
    ``EXPLAIN`` can render the underlying index's per-query cost
    breakdown without re-deriving the route.
    """

    description: str
    _execute: callable
    recorder: Recorder = NULL_RECORDER
    index_name: str | None = None
    index_kind: str | None = None
    preference: Preference | None = None
    limit: int | None = None

    def execute(self) -> Relation:
        recorder = self.recorder
        if not recorder.enabled:
            return self._execute()
        with recorder.span("sql.execute", {"plan": self.description}):
            result = self._execute()
        recorder.count("sql.statements")
        recorder.observe("sql.rows_out", result.n_rows)
        return result


# -- linear-expression analysis ------------------------------------------------


def linear_weights(expr: Expr) -> tuple[dict[ColumnRef, float], float] | None:
    """Decompose an expression into ``sum(w_i * col_i) + c``.

    Returns ``None`` when the expression is not linear in its column
    references (so the RJI route cannot serve it).
    """
    if isinstance(expr, NumberLit):
        return {}, expr.value
    if isinstance(expr, ColumnRef):
        return {expr: 1.0}, 0.0
    if isinstance(expr, UnaryOp) and expr.op == "-":
        inner = linear_weights(expr.operand)
        if inner is None:
            return None
        weights, constant = inner
        return {col: -w for col, w in weights.items()}, -constant
    if isinstance(expr, BinaryOp):
        if expr.op in ("+", "-"):
            left = linear_weights(expr.left)
            right = linear_weights(expr.right)
            if left is None or right is None:
                return None
            sign = 1.0 if expr.op == "+" else -1.0
            weights = defaultdict(float, left[0])
            for col, w in right[0].items():
                weights[col] += sign * w
            return dict(weights), left[1] + sign * right[1]
        if expr.op == "*":
            left = linear_weights(expr.left)
            right = linear_weights(expr.right)
            if left is None or right is None:
                return None
            if not left[0]:  # constant * linear
                scale = left[1]
                return (
                    {col: scale * w for col, w in right[0].items()},
                    scale * right[1],
                )
            if not right[0]:  # linear * constant
                scale = right[1]
                return (
                    {col: scale * w for col, w in left[0].items()},
                    scale * left[1],
                )
            return None
        if expr.op == "/":
            left = linear_weights(expr.left)
            right = linear_weights(expr.right)
            if left is None or right is None or right[0] or right[1] == 0.0:
                return None
            scale = 1.0 / right[1]
            return (
                {col: scale * w for col, w in left[0].items()},
                scale * left[1],
            )
    return None


def _ref_matches(ref: ColumnRef, table: str, column: str) -> bool:
    return ref.name == column and ref.table in (None, table)


def _single_table_linear_weights(
    stmt: SelectStmt,
) -> dict[ColumnRef, float] | None:
    """Weights of a single descending linear ORDER BY, if that's the shape."""
    if (
        stmt.where is not None
        or stmt.limit is None
        or len(stmt.order_by) != 1
        or not stmt.order_by[0].descending
        or isinstance(stmt.order_by[0].expr, str)
    ):
        return None
    decomposed = linear_weights(stmt.order_by[0].expr)
    if decomposed is None:
        return None
    weights = {col: w for col, w in decomposed[0].items() if w != 0.0}
    if not weights or any(w < 0.0 for w in weights.values()):
        return None
    return weights


def _find_selection_route(db: Database, stmt: SelectStmt):
    """A matching top-k selection index for a single-table query."""
    if stmt.join is not None:
        return None
    weights = _single_table_linear_weights(stmt)
    if weights is None or len(weights) > 2:
        return None
    for name in db.selection_indices():
        definition = db.selection_index_def(name)
        if definition.table != stmt.table:
            continue
        p1 = p2 = 0.0
        recognized = True
        for col, weight in weights.items():
            if _ref_matches(col, definition.table, definition.ranks[0]):
                p1 += weight
            elif _ref_matches(col, definition.table, definition.ranks[1]):
                p2 += weight
            else:
                recognized = False
                break
        if not recognized or (p1 == 0.0 and p2 == 0.0):
            continue
        if stmt.limit > definition.k_bound:
            continue
        return definition, Preference(p1, p2)
    return None


def _selection_plan(
    db: Database,
    stmt: SelectStmt,
    definition,
    preference,
    recorder: Recorder = NULL_RECORDER,
) -> Plan:
    def run() -> Relation:
        with recorder.span(
            "sql.op.selection_scan",
            {
                "index": definition.name,
                "k": stmt.limit,
                "p1": preference.p1,
                "p2": preference.p2,
            },
        ):
            index = db.selection_index(definition.name)
            answers = index.query(preference, stmt.limit)
        if recorder.enabled:
            recorder.observe("sql.op.selection_scan.rows", len(answers))
        relation = db.table(definition.table).take(
            np.asarray([answer.tid for answer in answers], dtype=np.int64)
        )
        resolver = Resolver(
            relation,
            {name: definition.table for name in relation.schema.names},
        )
        return project_columns_for_select(relation, resolver, stmt.columns)

    return Plan(
        f"top-k selection index scan using {definition.name} "
        f"(K={definition.k_bound}, k={stmt.limit}, "
        f"preference=({preference.p1:g}, {preference.p2:g}))",
        run,
        recorder,
        index_name=definition.name,
        index_kind="selection",
        preference=preference,
        limit=stmt.limit,
    )


def project_columns_for_select(relation, resolver, columns):
    from .executor import project_columns

    return project_columns(relation, resolver, columns)


def _find_rji_route(
    db: Database, stmt: SelectStmt
) -> tuple[RankedJoinIndexDef, Preference] | None:
    """A matching index and the query's preference vector, if any."""
    if (
        stmt.join is None
        or stmt.where is not None
        or stmt.limit is None
        or len(stmt.order_by) != 1
        or not stmt.order_by[0].descending
    ):
        return None
    decomposed = linear_weights(stmt.order_by[0].expr)
    if decomposed is None:
        return None
    weights, _ = decomposed
    weights = {col: w for col, w in weights.items() if w != 0.0}
    if len(weights) > 2 or any(w < 0.0 for w in weights.values()):
        return None
    if not weights:
        return None

    join = stmt.join
    for name in db.indices():
        definition = db.index_def(name)
        tables_match = definition.left_table == stmt.table and (
            definition.right_table == join.table
        )
        if not tables_match:
            continue
        on_match = _ref_matches(
            join.left_column, definition.left_table, definition.on[0]
        ) and _ref_matches(
            join.right_column, definition.right_table, definition.on[1]
        ) or (
            _ref_matches(
                join.left_column, definition.right_table, definition.on[1]
            )
            and _ref_matches(
                join.right_column, definition.left_table, definition.on[0]
            )
        )
        if not on_match:
            continue
        p1 = p2 = 0.0
        recognized = True
        for col, weight in weights.items():
            if _ref_matches(col, definition.left_table, definition.ranks[0]):
                p1 += weight
            elif _ref_matches(col, definition.right_table, definition.ranks[1]):
                p2 += weight
            else:
                recognized = False
                break
        if not recognized or (p1 == 0.0 and p2 == 0.0):
            continue
        index = db.index(name)
        if stmt.limit > index.k_bound:
            continue
        return definition, Preference(p1, p2)
    return None


# -- plan construction ---------------------------------------------------------


def _flat_single_table(db: Database, table: str) -> tuple[Relation, Resolver]:
    relation = db.table(table)
    return relation, Resolver(
        relation, {name: table for name in relation.schema.names}
    )


def _flat_joined(db: Database, stmt: SelectStmt) -> tuple[Relation, Resolver]:
    left = db.table(stmt.table)
    right = db.table(stmt.join.table)
    left_resolver = Resolver(
        left, {name: stmt.table for name in left.schema.names}
    )
    right_resolver = Resolver(
        right, {name: stmt.join.table for name in right.schema.names}
    )
    # Resolve which side each ON column belongs to.
    try:
        left_col = left_resolver.resolve(stmt.join.left_column)
        right_col = right_resolver.resolve(stmt.join.right_column)
    except SchemaError:
        left_col = left_resolver.resolve(stmt.join.right_column)
        right_col = right_resolver.resolve(stmt.join.left_column)

    buckets: dict = defaultdict(list)
    for position, key in enumerate(right.column(right_col)):
        buckets[key].append(position)
    left_positions: list[int] = []
    right_positions: list[int] = []
    for position, key in enumerate(left.column(left_col)):
        for match in buckets.get(key, ()):
            left_positions.append(position)
            right_positions.append(match)
    return flatten_join(
        left,
        stmt.table,
        right,
        stmt.join.table,
        np.asarray(left_positions, dtype=np.int64),
        np.asarray(right_positions, dtype=np.int64),
    )


def _rji_plan(
    db: Database,
    stmt: SelectStmt,
    definition: RankedJoinIndexDef,
    preference: Preference,
    recorder: Recorder = NULL_RECORDER,
) -> Plan:
    def run() -> Relation:
        with recorder.span(
            "sql.op.rji_scan",
            {
                "index": definition.name,
                "k": stmt.limit,
                "p1": preference.p1,
                "p2": preference.p2,
            },
        ):
            index = db.index(definition.name)
            answers = index.query(preference, stmt.limit)
        if recorder.enabled:
            recorder.observe("sql.op.rji_scan.rows", len(answers))
        left = db.table(definition.left_table)
        right = db.table(definition.right_table)
        left_positions = []
        right_positions = []
        for answer in answers:
            li, rj = decode_rid_pair(answer.tid)
            left_positions.append(li)
            right_positions.append(rj)
        relation, resolver = flatten_join(
            left,
            definition.left_table,
            right,
            definition.right_table,
            np.asarray(left_positions, dtype=np.int64),
            np.asarray(right_positions, dtype=np.int64),
        )
        return project_columns(relation, resolver, stmt.columns)

    return Plan(
        f"ranked-join-index scan using {definition.name} "
        f"(K={definition.k_bound}, k={stmt.limit}, "
        f"preference=({preference.p1:g}, {preference.p2:g}))",
        run,
        recorder,
        index_name=definition.name,
        index_kind="rji",
        preference=preference,
        limit=stmt.limit,
    )


def _estimate_source_rows(db: Database, stmt: SelectStmt) -> int | None:
    """Optimizer-style cardinality estimate for the plan's source step."""
    from ..relalg.stats import collect_statistics, estimate_equijoin_rows

    try:
        left = db.table(stmt.table)
        if stmt.join is None:
            return left.n_rows
        right = db.table(stmt.join.table)
        left_stats = collect_statistics(left)
        right_stats = collect_statistics(right)
        # Resolve which side each ON column names (either order is legal).
        left_name = stmt.join.left_column.name
        right_name = stmt.join.right_column.name
        if left_name not in left.schema or right_name not in right.schema:
            left_name, right_name = right_name, left_name
        return estimate_equijoin_rows(
            left_stats.column(left_name), right_stats.column(right_name)
        )
    except SchemaError:
        return None


def _pipeline_plan(
    db: Database, stmt: SelectStmt, recorder: Recorder = NULL_RECORDER
) -> Plan:
    steps = []
    estimate = _estimate_source_rows(db, stmt)
    suffix = f" (est. rows ~{estimate})" if estimate is not None else ""
    if stmt.join is not None:
        steps.append(f"hash join({stmt.table}, {stmt.join.table}){suffix}")
    else:
        steps.append(f"seq scan({stmt.table}){suffix}")
    if stmt.where is not None:
        steps.append("filter")
    if stmt.order_by:
        steps.append("sort")
    if stmt.limit is not None:
        steps.append(f"limit {stmt.limit}")
    if stmt.columns != "*":
        steps.append("project")

    def run() -> Relation:
        source_attrs = {"table": stmt.table}
        if stmt.join is not None:
            source_attrs["join"] = stmt.join.table
        with recorder.span("sql.op.source", source_attrs):
            if stmt.join is not None:
                relation, resolver = _flat_joined(db, stmt)
            else:
                relation, resolver = _flat_single_table(db, stmt.table)
        if recorder.enabled:
            recorder.observe("sql.op.source.rows", relation.n_rows)
        if stmt.where is not None:
            with recorder.span("sql.op.filter"):
                mask = evaluate(stmt.where, relation, resolver).astype(bool)
                relation = relation.take(np.nonzero(mask)[0])
            if recorder.enabled:
                recorder.observe("sql.op.filter.rows", relation.n_rows)
        if stmt.order_by:
            with recorder.span("sql.op.sort"):
                keys = [
                    evaluate(item.expr, relation, resolver)
                    for item in stmt.order_by
                ]
                relation = sort_rows(
                    relation, keys, [item.descending for item in stmt.order_by]
                )
            if recorder.enabled:
                recorder.observe("sql.op.sort.rows", relation.n_rows)
        if stmt.limit is not None:
            relation = relation.take(
                np.arange(min(stmt.limit, relation.n_rows))
            )
            if recorder.enabled:
                recorder.observe("sql.op.limit.rows", relation.n_rows)
        # The resolver indexes physical names, which row selection above
        # does not change, so it remains valid for projection.
        if stmt.join is not None:
            table_of = {
                name: name.split("__", 1)[0]
                for name in relation.schema.names
            }
        else:
            table_of = {name: stmt.table for name in relation.schema.names}
        return project_columns(
            relation, Resolver(relation, table_of), stmt.columns
        )

    return Plan(" -> ".join(steps), run, recorder)


def _is_aggregate_query(stmt: SelectStmt) -> bool:
    if stmt.group_by:
        return True
    if stmt.columns == "*":
        return False
    return any(isinstance(item, AggregateCall) for item in stmt.columns)


def _aggregate_output_name(item: AggregateCall) -> str:
    if item.alias:
        return item.alias
    argument = "all" if item.argument == "*" else item.argument.name
    return f"{item.func}_{argument}"


def _aggregate_plan(
    db: Database, stmt: SelectStmt, recorder: Recorder = NULL_RECORDER
) -> Plan:
    """GROUP BY / global aggregation over the (joined, filtered) source."""
    from ..relalg.aggregate import Aggregate, group_by

    if stmt.columns == "*":
        raise SqlSyntaxError("SELECT * cannot be combined with GROUP BY")
    for item in stmt.columns:
        if isinstance(item, AggregateCall):
            continue
        if isinstance(item, ColumnRef) and any(
            g.name == item.name and (g.table is None or g.table == item.table)
            or (item.table is None and g.name == item.name)
            for g in stmt.group_by
        ):
            continue
        raise SqlSyntaxError(
            f"select item {item} must be an aggregate or a GROUP BY column"
        )

    steps = []
    if stmt.join is not None:
        steps.append(f"hash join({stmt.table}, {stmt.join.table})")
    else:
        steps.append(f"seq scan({stmt.table})")
    if stmt.where is not None:
        steps.append("filter")
    if stmt.group_by:
        steps.append(
            "aggregate(group by "
            + ", ".join(str(g) for g in stmt.group_by)
            + ")"
        )
    else:
        steps.append("aggregate(global)")
    if stmt.order_by:
        steps.append("sort")
    if stmt.limit is not None:
        steps.append(f"limit {stmt.limit}")

    def run() -> Relation:
        from ..relalg.operators import project as project_op

        if stmt.join is not None:
            relation, resolver = _flat_joined(db, stmt)
        else:
            relation, resolver = _flat_single_table(db, stmt.table)
        if stmt.where is not None:
            from .executor import evaluate

            mask = evaluate(stmt.where, relation, resolver).astype(bool)
            relation = relation.take(np.nonzero(mask)[0])

        # Aggregates come from the select list plus any ORDER BY-only
        # aggregates (SQL permits ordering by an aggregate that is not
        # projected); the final projection drops the extras.
        wanted: list[AggregateCall] = [
            item for item in stmt.columns if isinstance(item, AggregateCall)
        ]
        names_seen = {_aggregate_output_name(item) for item in wanted}
        for order in stmt.order_by:
            if (
                isinstance(order.expr, AggregateCall)
                and _aggregate_output_name(order.expr) not in names_seen
            ):
                wanted.append(order.expr)
                names_seen.add(_aggregate_output_name(order.expr))
        specs = [
            Aggregate(
                item.func,
                "*"
                if item.argument == "*"
                else resolver.resolve(item.argument),
                alias=_aggregate_output_name(item),
            )
            for item in wanted
        ]
        if stmt.group_by:
            keys = [resolver.resolve(g) for g in stmt.group_by]
            aggregated = group_by(relation, keys, specs)
        else:
            aggregated = _global_aggregate(relation, specs)

        # Resolve post-aggregation references (keys keep their physical
        # names; aggregates live under their output names).
        from .executor import Resolver as PostResolver

        table_of = {
            name: name.split("__", 1)[0] if "__" in name else stmt.table
            for name in aggregated.schema.names
        }
        post_resolver = PostResolver(aggregated, table_of)

        if stmt.order_by:
            from .executor import evaluate, sort_rows

            keys_arrays = []
            for item in stmt.order_by:
                expr = item.expr
                if isinstance(expr, AggregateCall):
                    expr = ColumnRef(_aggregate_output_name(expr))
                keys_arrays.append(evaluate(expr, aggregated, post_resolver))
            aggregated = sort_rows(
                aggregated,
                keys_arrays,
                [item.descending for item in stmt.order_by],
            )
        if stmt.limit is not None:
            aggregated = aggregated.take(
                np.arange(min(stmt.limit, aggregated.n_rows))
            )
        # Final projection in the stated select order.
        names = []
        post_resolver = PostResolver(
            aggregated,
            {
                name: name.split("__", 1)[0] if "__" in name else stmt.table
                for name in aggregated.schema.names
            },
        )
        for item in stmt.columns:
            if isinstance(item, AggregateCall):
                names.append(_aggregate_output_name(item))
            else:
                names.append(post_resolver.resolve(item))
        return project_op(aggregated, names)

    def traced_run() -> Relation:
        with recorder.span("sql.op.aggregate"):
            result = run()
        if recorder.enabled:
            recorder.observe("sql.op.aggregate.rows", result.n_rows)
        return result

    return Plan(" -> ".join(steps), traced_run, recorder)


def _global_aggregate(relation: Relation, specs) -> Relation:
    """Aggregation without grouping keys: one row over the whole input.

    Implemented by grouping on an attached constant key and projecting
    it away.  Over an empty input this yields an empty result (rather
    than SQL's single COUNT=0 row), which the tests document.
    """
    from ..relalg.aggregate import group_by
    from ..relalg.operators import project as project_op
    from ..relalg.relation import Relation as Rel
    from ..relalg.schema import Column, Schema

    data = {name: relation.column(name) for name in relation.schema.names}
    data["__group"] = np.zeros(relation.n_rows, dtype=np.int64)
    keyed = Rel(
        Schema(list(relation.schema.columns) + [Column("__group", "int64")]),
        data,
    )
    out = group_by(keyed, ["__group"], list(specs))
    return project_op(out, [c.name for c in out.schema if c.name != "__group"])


def plan_select(
    db: Database, stmt: SelectStmt, recorder: Recorder = NULL_RECORDER
) -> Plan:
    """Choose among the aggregate path, the ranked-index route and the
    generic pipeline."""
    if _is_aggregate_query(stmt):
        return _aggregate_plan(db, stmt, recorder)
    route = _find_rji_route(db, stmt)
    if route is not None:
        definition, preference = route
        return _rji_plan(db, stmt, definition, preference, recorder)
    selection = _find_selection_route(db, stmt)
    if selection is not None:
        definition, preference = selection
        return _selection_plan(db, stmt, definition, preference, recorder)
    return _pipeline_plan(db, stmt, recorder)
