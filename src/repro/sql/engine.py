"""The SQL engine: parse, plan, execute.

:class:`SQLDatabase` wraps the relational catalog with a string
interface::

    db = SQLDatabase()
    db.execute("CREATE TABLE parts (availability FLOAT, supplier_id INT)")
    db.execute("INSERT INTO parts VALUES (5.0, 1), (2.0, 2)")
    db.execute(
        "CREATE RANKED JOIN INDEX psi ON parts JOIN suppliers "
        "ON parts.supplier_id = suppliers.supplier_id "
        "RANK BY (parts.availability, suppliers.quality) WITH K = 10"
    )
    db.execute(
        "SELECT * FROM parts JOIN suppliers "
        "ON parts.supplier_id = suppliers.supplier_id "
        "ORDER BY 2 * availability + quality DESC LIMIT 5"
    )   # -> served by the ranked join index; see EXPLAIN

``execute`` returns a :class:`~repro.relalg.relation.Relation` for
SELECT, a status string for DDL/DML, and the plan description for
EXPLAIN.
"""

from __future__ import annotations

from ..errors import SchemaError
from ..obs import NULL_RECORDER, Recorder, render_explain
from ..relalg.database import Database
from ..relalg.operators import union
from ..relalg.relation import Relation
from ..relalg.schema import DTYPES, Schema
from .ast import (
    CreateRankedIndexStmt,
    CreateSelectionIndexStmt,
    CreateTableStmt,
    ExplainStmt,
    InsertStmt,
    SelectStmt,
    Statement,
)
from .parser import parse
from .planner import plan_select
from .tokens import SqlSyntaxError

__all__ = ["SQLDatabase", "split_statements"]


def split_statements(script: str) -> list[str]:
    """Split a script on ';' outside string literals; drops blanks."""
    statements: list[str] = []
    current: list[str] = []
    in_string = False
    for ch in script:
        if ch == "'":
            in_string = not in_string
        if ch == ";" and not in_string:
            text = "".join(current).strip()
            if text:
                statements.append(text)
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        statements.append(tail)
    return statements


class SQLDatabase:
    """A SQL front end over the relational catalog and its RJIs."""

    def __init__(
        self,
        database: Database | None = None,
        *,
        recorder: Recorder = NULL_RECORDER,
    ):
        self.database = database if database is not None else Database()
        self.recorder = recorder

    def execute(self, sql: str):
        """Parse and run one statement."""
        return self._run(parse(sql))

    def run_script(self, script: str) -> list:
        """Run a ';'-separated sequence of statements; returns all results."""
        return [
            self.execute(statement)
            for statement in split_statements(script)
        ]

    def explain(self, sql: str) -> str:
        """The plan for a statement, as a text tree, without running it.

        The first line carries the chosen plan's description; when the
        plan is served by a ranked index, the tree continues with the
        index's per-query cost breakdown
        (:func:`~repro.obs.render_explain`).  Explaining never executes
        the statement and never perturbs query counters.
        """
        statement = parse(sql)
        if isinstance(statement, ExplainStmt):
            statement = statement.statement
        return self.explain_statement(statement)

    def _run(self, statement: Statement):
        if isinstance(statement, ExplainStmt):
            return self.explain_statement(statement.statement)
        if isinstance(statement, SelectStmt):
            return plan_select(self.database, statement, self.recorder).execute()
        if isinstance(statement, CreateTableStmt):
            self.database.create_table(statement.name, statement.columns)
            return f"created table {statement.name}"
        if isinstance(statement, InsertStmt):
            return self._insert(statement)
        if isinstance(statement, CreateRankedIndexStmt):
            return self._create_index(statement)
        if isinstance(statement, CreateSelectionIndexStmt):
            return self._create_selection_index(statement)
        raise SqlSyntaxError(f"unsupported statement {statement!r}")

    def explain_statement(self, statement: Statement) -> str:
        if not isinstance(statement, SelectStmt):
            return f"ddl: {type(statement).__name__}"
        plan = plan_select(self.database, statement, self.recorder)
        lines = [f"plan: {plan.description}"]
        if plan.index_name is not None and plan.preference is not None:
            if plan.index_kind == "selection":
                index = self.database.selection_index(plan.index_name).index
            else:
                index = self.database.index(plan.index_name)
            breakdown = index.explain(
                plan.preference, plan.limit, record=False
            )
            lines.append("└─ index cost breakdown:")
            lines.extend(
                "   " + line
                for line in render_explain(breakdown).splitlines()
            )
        return "\n".join(lines)

    def _insert(self, statement: InsertStmt) -> str:
        existing = self.database.table(statement.table)
        schema = existing.schema
        coerced_rows = [
            self._coerce_row(schema, row, statement.table)
            for row in statement.rows
        ]
        incoming = Relation.from_rows(schema, coerced_rows)
        self.database.register(statement.table, union(existing, incoming))
        return f"inserted {len(statement.rows)} rows into {statement.table}"

    @staticmethod
    def _coerce_row(schema: Schema, row: tuple, table: str) -> tuple:
        if len(row) != len(schema):
            raise SchemaError(
                f"INSERT into {table}: row {row!r} has {len(row)} values, "
                f"table has {len(schema)} columns"
            )
        coerced = []
        for value, column in zip(row, schema):
            target = DTYPES[column.dtype]
            if column.dtype == "str":
                coerced.append(str(value))
            elif isinstance(value, str):
                raise SchemaError(
                    f"INSERT into {table}: string {value!r} for numeric "
                    f"column {column.name!r}"
                )
            else:
                coerced.append(target(value))
        return tuple(coerced)

    def _create_index(self, statement: CreateRankedIndexStmt) -> str:
        def bare(ref, expected_table: str) -> str:
            if ref.table is not None and ref.table != expected_table:
                raise SchemaError(
                    f"column {ref} does not belong to table {expected_table!r}"
                )
            return ref.name

        self.database.create_ranked_join_index(
            statement.name,
            statement.left_table,
            statement.right_table,
            on=(
                bare(statement.on[0], statement.left_table),
                bare(statement.on[1], statement.right_table),
            ),
            ranks=(
                bare(statement.ranks[0], statement.left_table),
                bare(statement.ranks[1], statement.right_table),
            ),
            k=statement.k,
        )
        return (
            f"created ranked join index {statement.name} "
            f"(K={statement.k})"
        )

    def _create_selection_index(
        self, statement: CreateSelectionIndexStmt
    ) -> str:
        def bare(ref) -> str:
            if ref.table is not None and ref.table != statement.table:
                raise SchemaError(
                    f"column {ref} does not belong to table {statement.table!r}"
                )
            return ref.name

        self.database.create_topk_selection_index(
            statement.name,
            statement.table,
            ranks=(bare(statement.ranks[0]), bare(statement.ranks[1])),
            k=statement.k,
        )
        return (
            f"created top-k selection index {statement.name} "
            f"(K={statement.k})"
        )
