"""Expression evaluation and row operations for the SQL layer.

Joined relations use *flattened* column names ``table__column`` so both
qualified (``parts.availability``) and unqualified references resolve
unambiguously; single-table scans keep the original names.
"""

from __future__ import annotations

import numpy as np

from ..errors import SchemaError
from ..relalg.relation import Relation
from ..relalg.schema import Column, Schema
from .ast import BinaryOp, ColumnRef, Expr, NumberLit, StringLit, UnaryOp
from .tokens import SqlSyntaxError

__all__ = ["Resolver", "evaluate", "flatten_join", "sort_rows", "project_columns"]


class Resolver:
    """Maps AST column references onto physical column names."""

    def __init__(self, relation: Relation, table_of: dict[str, str]):
        """``table_of`` maps physical column name -> owning table name."""
        self.relation = relation
        self._table_of = table_of
        self._by_bare: dict[str, list[str]] = {}
        for physical in relation.schema.names:
            bare = physical.split("__", 1)[1] if "__" in physical else physical
            self._by_bare.setdefault(bare, []).append(physical)

    def resolve(self, ref: ColumnRef) -> str:
        candidates = self._by_bare.get(ref.name, [])
        if ref.table is not None:
            matches = [
                name
                for name in candidates
                if self._table_of.get(name) == ref.table
            ]
            if not matches:
                raise SchemaError(f"unknown column {ref}")
            return matches[0]
        if not candidates:
            raise SchemaError(f"unknown column {ref}")
        if len(candidates) > 1:
            raise SqlSyntaxError(
                f"ambiguous column {ref.name!r}: one of {sorted(candidates)}"
            )
        return candidates[0]


def evaluate(expr: Expr, relation: Relation, resolver: Resolver) -> np.ndarray:
    """Vectorized evaluation of an expression over every row."""
    if isinstance(expr, NumberLit):
        return np.full(relation.n_rows, expr.value)
    if isinstance(expr, StringLit):
        return np.full(relation.n_rows, expr.value, dtype=object)
    if isinstance(expr, ColumnRef):
        return relation.column(resolver.resolve(expr))
    if isinstance(expr, UnaryOp):
        value = evaluate(expr.operand, relation, resolver)
        if expr.op == "-":
            return -value
        if expr.op == "NOT":
            return ~value.astype(bool)
        raise SqlSyntaxError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, BinaryOp):
        left = evaluate(expr.left, relation, resolver)
        right = evaluate(expr.right, relation, resolver)
        op = expr.op
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left / right
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "AND":
            return left.astype(bool) & right.astype(bool)
        if op == "OR":
            return left.astype(bool) | right.astype(bool)
        raise SqlSyntaxError(f"unknown operator {op!r}")
    raise SqlSyntaxError(f"cannot evaluate {expr!r}")


def flatten_join(
    left: Relation,
    left_table: str,
    right: Relation,
    right_table: str,
    left_positions: np.ndarray,
    right_positions: np.ndarray,
) -> tuple[Relation, Resolver]:
    """Joined relation with ``table__column`` names plus its resolver."""
    columns: list[Column] = []
    data: dict[str, np.ndarray] = {}
    table_of: dict[str, str] = {}
    for source, table, positions in (
        (left, left_table, left_positions),
        (right, right_table, right_positions),
    ):
        for column in source.schema:
            physical = f"{table}__{column.name}"
            if physical in data:
                raise SchemaError(
                    f"duplicate column {physical!r} joining a table to itself; "
                    "alias support is out of scope for this dialect"
                )
            columns.append(Column(physical, column.dtype))
            data[physical] = source.column(column.name)[positions]
            table_of[physical] = table
    relation = Relation(Schema(columns), data)
    return relation, Resolver(relation, table_of)


class _ReverseKey:
    """Wrapper inverting comparison order (for ORDER BY ... DESC)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "_ReverseKey") -> bool:
        return other.value < self.value

    def __eq__(self, other) -> bool:
        return isinstance(other, _ReverseKey) and self.value == other.value


def sort_rows(
    relation: Relation,
    keys: list[np.ndarray],
    descending: list[bool],
) -> Relation:
    """Stable multi-key sort by precomputed key arrays."""
    def row_key(position: int):
        parts = []
        for key, desc in zip(keys, descending):
            value = key[position]
            parts.append(_ReverseKey(value) if desc else value)
        return tuple(parts)

    order = sorted(range(relation.n_rows), key=row_key)
    return relation.take(np.asarray(order, dtype=np.int64))


def project_columns(
    relation: Relation,
    resolver: Resolver,
    columns,
) -> Relation:
    """Apply the SELECT list (``"*"`` or expression list)."""
    if columns == "*":
        return relation
    out_columns: list[Column] = []
    data: dict[str, np.ndarray] = {}
    for position, expr in enumerate(columns):
        values = evaluate(expr, relation, resolver)
        if isinstance(expr, ColumnRef):
            name = resolver.resolve(expr)
            dtype = relation.schema.column(name).dtype
        else:
            name = f"expr_{position}"
            values = np.asarray(values, dtype=np.float64)
            dtype = "float64"
        if name in data:
            name = f"{name}_{position}"
        out_columns.append(Column(name, dtype))
        data[name] = values
    return Relation(Schema(out_columns), data)
