"""Abstract syntax tree of the SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

__all__ = [
    "AggregateCall",
    "ColumnRef",
    "NumberLit",
    "StringLit",
    "BinaryOp",
    "UnaryOp",
    "Expr",
    "OrderItem",
    "JoinSpec",
    "SelectStmt",
    "CreateTableStmt",
    "InsertStmt",
    "CreateRankedIndexStmt",
    "CreateSelectionIndexStmt",
    "ExplainStmt",
    "Statement",
]


# -- expressions -----------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef:
    """A possibly table-qualified column reference."""

    name: str
    table: str | None = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class NumberLit:
    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class StringLit:
    value: str

    def __str__(self) -> str:
        return f"'{self.value}'"


@dataclass(frozen=True)
class AggregateCall:
    """An aggregate function call: ``COUNT(*)``, ``AVG(col)``, ...

    ``argument`` is a :class:`ColumnRef` or the literal string ``"*"``
    (COUNT only).
    """

    func: str  # lower-case: count, sum, min, max, avg
    argument: "ColumnRef | str"
    alias: str | None = None

    def __str__(self) -> str:
        return f"{self.func}({self.argument})"


@dataclass(frozen=True)
class BinaryOp:
    """Binary operator node: arithmetic, comparison, AND/OR."""

    op: str
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp:
    """Unary minus or NOT."""

    op: str
    operand: "Expr"

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


Expr = Union[ColumnRef, NumberLit, StringLit, BinaryOp, UnaryOp]


# -- statements --------------------------------------------------------------


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class JoinSpec:
    """``JOIN <table> ON <left_col> = <right_col>`` (equi-join only)."""

    table: str
    left_column: ColumnRef
    right_column: ColumnRef


@dataclass(frozen=True)
class SelectStmt:
    columns: list  # list[Expr | AggregateCall] or the literal string "*"
    table: str
    join: JoinSpec | None = None
    where: Expr | None = None
    group_by: list[ColumnRef] = field(default_factory=list)
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None


@dataclass(frozen=True)
class CreateTableStmt:
    name: str
    columns: list[tuple[str, str]]  # (name, relalg dtype)


@dataclass(frozen=True)
class InsertStmt:
    table: str
    rows: list[tuple]


@dataclass(frozen=True)
class CreateRankedIndexStmt:
    """CREATE RANKED JOIN INDEX name ON l JOIN r ON l.a = r.b
    RANK BY (l.x, r.y) WITH K = <n>"""

    name: str
    left_table: str
    right_table: str
    on: tuple[ColumnRef, ColumnRef]
    ranks: tuple[ColumnRef, ColumnRef]
    k: int


@dataclass(frozen=True)
class CreateSelectionIndexStmt:
    """CREATE RANKED INDEX name ON t RANK BY (t.x, t.y) WITH K = <n>"""

    name: str
    table: str
    ranks: tuple[ColumnRef, ColumnRef]
    k: int


@dataclass(frozen=True)
class ExplainStmt:
    statement: "Statement"


Statement = Union[
    SelectStmt,
    CreateTableStmt,
    InsertStmt,
    CreateRankedIndexStmt,
    CreateSelectionIndexStmt,
    ExplainStmt,
]
