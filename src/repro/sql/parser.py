"""Recursive-descent parser for the SQL dialect.

Grammar sketch (keywords case-insensitive)::

    statement      := select | create_table | insert | create_index
                    | EXPLAIN statement
    select         := SELECT select_list FROM ident [join] [WHERE expr]
                      [ORDER BY order_list] [LIMIT number]
    join           := JOIN ident ON column EQ column
    create_table   := CREATE TABLE ident '(' col_def (',' col_def)* ')'
    col_def        := ident (INT | FLOAT | TEXT)
    insert         := INSERT INTO ident VALUES row (',' row)*
    create_index   := CREATE RANKED JOIN INDEX ident ON ident JOIN ident
                      ON column EQ column RANK BY '(' column ',' column ')'
                      WITH K EQ number
    expr           := or_expr with the usual precedence
                      (OR < AND < NOT < comparison < add < mul < unary)
"""

from __future__ import annotations

from .ast import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    CreateRankedIndexStmt,
    CreateSelectionIndexStmt,
    CreateTableStmt,
    ExplainStmt,
    Expr,
    InsertStmt,
    JoinSpec,
    NumberLit,
    OrderItem,
    SelectStmt,
    Statement,
    StringLit,
    UnaryOp,
)
from .tokens import SqlSyntaxError, Token, tokenize

__all__ = ["parse"]

_TYPE_MAP = {"INT": "int64", "FLOAT": "float64", "TEXT": "str"}
_COMPARISONS = {"EQ": "=", "NE": "!=", "LT": "<", "LE": "<=", "GT": ">", "GE": ">="}
# Keywords that may double as table/column names without ambiguity in
# the positions where names appear ("rank" and "k" are natural column
# names in this domain).
_NAME_KEYWORDS = {"RANK", "K", "INDEX", "TABLE", "TEXT", "VALUES"}
_AGGREGATES = {"COUNT", "SUM", "MIN", "MAX", "AVG"}


class _Parser:
    def __init__(self, sql: str):
        self.tokens = tokenize(sql)
        self.position = 0

    # -- cursor helpers --------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.position + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "EOF":
            self.position += 1
        return token

    def match(self, *kinds: str) -> Token | None:
        if self.peek().kind in kinds:
            return self.advance()
        return None

    def expect(self, kind: str, what: str | None = None) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise SqlSyntaxError(
                f"expected {what or kind} at offset {token.position}, "
                f"found {token.text!r}"
            )
        return self.advance()

    def expect_name(self, what: str) -> str:
        """An identifier, also accepting name-compatible keywords."""
        token = self.peek()
        if token.kind == "IDENT" or token.kind in _NAME_KEYWORDS:
            self.advance()
            return token.text
        raise SqlSyntaxError(
            f"expected {what} at offset {token.position}, found {token.text!r}"
        )

    # -- statements ----------------------------------------------------------

    def statement(self) -> Statement:
        if self.match("EXPLAIN"):
            return ExplainStmt(self.statement())
        token = self.peek()
        if token.kind == "SELECT":
            return self.select()
        if token.kind == "CREATE":
            if self.peek(1).kind == "TABLE":
                return self.create_table()
            return self.create_ranked_index()
        if token.kind == "INSERT":
            return self.insert()
        raise SqlSyntaxError(
            f"expected a statement at offset {token.position}, found {token.text!r}"
        )

    def parse(self) -> Statement:
        stmt = self.statement()
        self.match("SEMI")
        self.expect("EOF", "end of statement")
        return stmt

    def select(self) -> SelectStmt:
        self.expect("SELECT")
        if self.match("STAR"):
            columns: list | str = "*"
        else:
            columns = [self.select_item()]
            while self.match("COMMA"):
                columns.append(self.select_item())
        self.expect("FROM")
        table = self.expect_name("table name")

        join = None
        if self.match("JOIN"):
            join_table = self.expect_name("join table")
            self.expect("ON")
            left = self.column_ref()
            self.expect("EQ", "'=' in join condition")
            right = self.column_ref()
            join = JoinSpec(join_table, left, right)

        where = self.expr() if self.match("WHERE") else None

        group_by: list[ColumnRef] = []
        if self.match("GROUP"):
            self.expect("BY")
            group_by.append(self.column_ref())
            while self.match("COMMA"):
                group_by.append(self.column_ref())

        order_by: list[OrderItem] = []
        if self.match("ORDER"):
            self.expect("BY")
            order_by.append(self.order_item())
            while self.match("COMMA"):
                order_by.append(self.order_item())

        limit = None
        if self.match("LIMIT"):
            limit = int(float(self.expect("NUMBER", "limit count").text))
        return SelectStmt(
            columns, table, join, where, group_by, order_by, limit
        )

    def select_item(self):
        """One SELECT-list entry: an aggregate call or an expression."""
        token = self.peek()
        if token.kind in _AGGREGATES and self.peek(1).kind == "LPAREN":
            func = token.kind.lower()
            self.advance()
            self.expect("LPAREN")
            if self.match("STAR"):
                argument: ColumnRef | str = "*"
            else:
                argument = self.column_ref()
            self.expect("RPAREN")
            alias = None
            if self.match("AS"):
                alias = self.expect_name("alias")
            return AggregateCall(func, argument, alias)
        return self.expr()

    def order_item(self) -> OrderItem:
        expr = self.select_item()  # allows ORDER BY COUNT(*) DESC etc.
        descending = False
        if self.match("DESC"):
            descending = True
        else:
            self.match("ASC")
        return OrderItem(expr, descending)

    def create_table(self) -> CreateTableStmt:
        self.expect("CREATE")
        self.expect("TABLE")
        name = self.expect_name("table name")
        self.expect("LPAREN")
        columns = [self.column_def()]
        while self.match("COMMA"):
            columns.append(self.column_def())
        self.expect("RPAREN")
        return CreateTableStmt(name, columns)

    def column_def(self) -> tuple[str, str]:
        name = self.expect_name("column name")
        type_token = self.peek()
        if type_token.kind not in _TYPE_MAP:
            raise SqlSyntaxError(
                f"expected a column type (INT, FLOAT, TEXT) at offset "
                f"{type_token.position}, found {type_token.text!r}"
            )
        self.advance()
        return name, _TYPE_MAP[type_token.kind]

    def insert(self) -> InsertStmt:
        self.expect("INSERT")
        self.expect("INTO")
        table = self.expect_name("table name")
        self.expect("VALUES")
        rows = [self.row()]
        while self.match("COMMA"):
            rows.append(self.row())
        return InsertStmt(table, rows)

    def row(self) -> tuple:
        self.expect("LPAREN")
        values = [self.literal()]
        while self.match("COMMA"):
            values.append(self.literal())
        self.expect("RPAREN")
        return tuple(values)

    def literal(self):
        negative = bool(self.match("MINUS"))
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            value = float(token.text)
            if negative:
                value = -value
            return int(value) if value == int(value) and "." not in token.text else value
        if negative:
            raise SqlSyntaxError(f"'-' before non-number at offset {token.position}")
        if token.kind == "STRING":
            self.advance()
            return token.text
        raise SqlSyntaxError(
            f"expected a literal at offset {token.position}, found {token.text!r}"
        )

    def create_ranked_index(self):
        self.expect("CREATE")
        self.expect("RANKED", "RANKED (as in CREATE RANKED [JOIN] INDEX)")
        if self.peek().kind == "INDEX":
            return self.create_selection_index()
        self.expect("JOIN")
        self.expect("INDEX")
        name = self.expect_name("index name")
        self.expect("ON")
        left_table = self.expect_name("left table")
        self.expect("JOIN")
        right_table = self.expect_name("right table")
        self.expect("ON")
        left_on = self.column_ref()
        self.expect("EQ", "'=' in join condition")
        right_on = self.column_ref()
        self.expect("RANK")
        self.expect("BY")
        self.expect("LPAREN")
        left_rank = self.column_ref()
        self.expect("COMMA")
        right_rank = self.column_ref()
        self.expect("RPAREN")
        self.expect("WITH")
        self.expect("K")
        self.expect("EQ", "'=' after K")
        k = int(float(self.expect("NUMBER", "K value").text))
        return CreateRankedIndexStmt(
            name,
            left_table,
            right_table,
            (left_on, right_on),
            (left_rank, right_rank),
            k,
        )

    def create_selection_index(self) -> CreateSelectionIndexStmt:
        """``CREATE RANKED INDEX name ON t RANK BY (x, y) WITH K = n``
        (the CREATE RANKED prefix has been consumed by the caller)."""
        self.expect("INDEX")
        name = self.expect_name("index name")
        self.expect("ON")
        table = self.expect_name("table name")
        self.expect("RANK")
        self.expect("BY")
        self.expect("LPAREN")
        first = self.column_ref()
        self.expect("COMMA")
        second = self.column_ref()
        self.expect("RPAREN")
        self.expect("WITH")
        self.expect("K")
        self.expect("EQ", "'=' after K")
        k = int(float(self.expect("NUMBER", "K value").text))
        return CreateSelectionIndexStmt(name, table, (first, second), k)

    # -- expressions -------------------------------------------------------------

    def expr(self) -> Expr:
        return self.or_expr()

    def or_expr(self) -> Expr:
        left = self.and_expr()
        while self.match("OR"):
            left = BinaryOp("OR", left, self.and_expr())
        return left

    def and_expr(self) -> Expr:
        left = self.not_expr()
        while self.match("AND"):
            left = BinaryOp("AND", left, self.not_expr())
        return left

    def not_expr(self) -> Expr:
        if self.match("NOT"):
            return UnaryOp("NOT", self.not_expr())
        return self.comparison()

    def comparison(self) -> Expr:
        left = self.additive()
        token = self.peek()
        if token.kind in _COMPARISONS:
            self.advance()
            return BinaryOp(_COMPARISONS[token.kind], left, self.additive())
        return left

    def additive(self) -> Expr:
        left = self.multiplicative()
        while True:
            if self.match("PLUS"):
                left = BinaryOp("+", left, self.multiplicative())
            elif self.match("MINUS"):
                left = BinaryOp("-", left, self.multiplicative())
            else:
                return left

    def multiplicative(self) -> Expr:
        left = self.unary()
        while True:
            if self.match("STAR"):
                left = BinaryOp("*", left, self.unary())
            elif self.match("SLASH"):
                left = BinaryOp("/", left, self.unary())
            else:
                return left

    def unary(self) -> Expr:
        if self.match("MINUS"):
            return UnaryOp("-", self.unary())
        return self.primary()

    def primary(self) -> Expr:
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            return NumberLit(float(token.text))
        if token.kind == "STRING":
            self.advance()
            return StringLit(token.text)
        if token.kind == "IDENT" or token.kind in _NAME_KEYWORDS:
            return self.column_ref()
        if self.match("LPAREN"):
            inner = self.expr()
            self.expect("RPAREN")
            return inner
        raise SqlSyntaxError(
            f"expected an expression at offset {token.position}, "
            f"found {token.text!r}"
        )

    def column_ref(self) -> ColumnRef:
        first = self.expect_name("column name")
        if self.match("DOT"):
            second = self.expect_name("column name after '.'")
            return ColumnRef(second, table=first)
        return ColumnRef(first)


def parse(sql: str) -> Statement:
    """Parse one SQL statement into its AST."""
    return _Parser(sql).parse()
