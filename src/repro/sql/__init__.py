"""A small SQL dialect with ranked-join-index-aware planning.

The paper prepares the candidate join "in a fully declarative way"
(Section 4); this package supplies that declarative surface: DDL for
tables and ranked join indices, INSERT, and SELECT whose planner routes
the paper's target query shape (join + linear ORDER BY ... DESC +
LIMIT) through a matching :class:`~repro.core.index.RankedJoinIndex`.
"""

from .ast import (
    BinaryOp,
    ColumnRef,
    CreateRankedIndexStmt,
    CreateTableStmt,
    ExplainStmt,
    InsertStmt,
    JoinSpec,
    NumberLit,
    OrderItem,
    SelectStmt,
    StringLit,
    UnaryOp,
)
from .engine import SQLDatabase
from .parser import parse
from .planner import Plan, linear_weights, plan_select
from .tokens import SqlSyntaxError, Token, tokenize

__all__ = [
    "BinaryOp",
    "ColumnRef",
    "CreateRankedIndexStmt",
    "CreateTableStmt",
    "ExplainStmt",
    "InsertStmt",
    "JoinSpec",
    "NumberLit",
    "OrderItem",
    "Plan",
    "SQLDatabase",
    "SelectStmt",
    "SqlSyntaxError",
    "StringLit",
    "Token",
    "UnaryOp",
    "linear_weights",
    "parse",
    "plan_select",
    "tokenize",
]
