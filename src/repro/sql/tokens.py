"""Lexer for the small SQL dialect.

The dialect covers what Section 4 of the paper calls "a fully
declarative way" of preparing and querying the ranked join: CREATE
TABLE, INSERT, CREATE RANKED JOIN INDEX, and SELECT with JOIN / WHERE /
ORDER BY / LIMIT.  Tokens carry their position for error messages.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError

__all__ = ["SqlSyntaxError", "Token", "tokenize", "KEYWORDS"]


class SqlSyntaxError(ReproError, ValueError):
    """Lexical or grammatical error in a SQL string."""


KEYWORDS = {
    "SELECT",
    "FROM",
    "JOIN",
    "ON",
    "WHERE",
    "ORDER",
    "BY",
    "ASC",
    "DESC",
    "LIMIT",
    "CREATE",
    "TABLE",
    "INSERT",
    "INTO",
    "VALUES",
    "RANKED",
    "INDEX",
    "RANK",
    "GROUP",
    "COUNT",
    "SUM",
    "MIN",
    "MAX",
    "AVG",
    "WITH",
    "K",
    "AND",
    "OR",
    "NOT",
    "INT",
    "FLOAT",
    "TEXT",
    "AS",
    "EXPLAIN",
}

_PUNCT = {
    "(": "LPAREN",
    ")": "RPAREN",
    ",": "COMMA",
    ".": "DOT",
    ";": "SEMI",
    "+": "PLUS",
    "-": "MINUS",
    "*": "STAR",
    "/": "SLASH",
    "=": "EQ",
}
_TWO_CHAR = {"<=": "LE", ">=": "GE", "<>": "NE", "!=": "NE"}
_ONE_CHAR_CMP = {"<": "LT", ">": "GT"}


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token: kind, source text, and source offset."""

    kind: str
    text: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}({self.text!r})"


def tokenize(sql: str) -> list[Token]:
    """Tokenize a SQL string; raises :class:`SqlSyntaxError` on junk."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql[i : i + 2] in _TWO_CHAR:
            tokens.append(Token(_TWO_CHAR[sql[i : i + 2]], sql[i : i + 2], i))
            i += 2
            continue
        if ch in _ONE_CHAR_CMP:
            tokens.append(Token(_ONE_CHAR_CMP[ch], ch, i))
            i += 1
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and sql[i + 1].isdigit()
        ):
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                seen_dot = seen_dot or sql[j] == "."
                j += 1
            tokens.append(Token("NUMBER", sql[i:j], i))
            i = j
            continue
        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, i))
            i += 1
            continue
        if ch == "'":
            end = sql.find("'", i + 1)
            if end == -1:
                raise SqlSyntaxError(f"unterminated string literal at {i}")
            tokens.append(Token("STRING", sql[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(upper, word, i))
            else:
                tokens.append(Token("IDENT", word, i))
            i = j
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r} at offset {i}")
    tokens.append(Token("EOF", "", n))
    return tokens
