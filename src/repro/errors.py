"""Exception hierarchy for the ``repro`` package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidPreferenceError",
    "ConstructionError",
    "QueryError",
    "InvalidQueryError",
    "MaintenanceError",
    "StorageError",
    "PageOverflowError",
    "SchemaError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidPreferenceError(ReproError, ValueError):
    """A preference vector was malformed (negative or all-zero weights)."""


class ConstructionError(ReproError):
    """Index construction was given inconsistent or unusable input."""


class QueryError(ReproError, ValueError):
    """A query was malformed (e.g. ``k`` larger than the index bound K)."""


class InvalidQueryError(QueryError):
    """A query's inputs were rejected before any work was done.

    The single validation error of every query entry point: ``k``
    outside ``[1, K]`` (or the effective bound after lazy deletions) and
    malformed preference arguments both raise this type.  It subclasses
    :class:`QueryError`, so existing handlers keep working.
    """


class MaintenanceError(ReproError):
    """An incremental update could not be applied to the index."""


class StorageError(ReproError):
    """A failure in the paged-storage substrate."""


class PageOverflowError(StorageError):
    """A record did not fit into a page where it was required to."""


class SchemaError(ReproError, ValueError):
    """A relational operation was applied to incompatible schemas."""
