"""Exception hierarchy for the ``repro`` package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidPreferenceError",
    "ConstructionError",
    "QueryError",
    "InvalidQueryError",
    "QueryTimeoutError",
    "MaintenanceError",
    "LockDisciplineError",
    "StorageError",
    "PageOverflowError",
    "CorruptPageError",
    "TornWriteError",
    "TransientStorageError",
    "CircuitOpenError",
    "SchemaError",
    "ServerError",
    "ServerOverloadedError",
    "ServerConnectionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidPreferenceError(ReproError, ValueError):
    """A preference vector was malformed (negative or all-zero weights)."""


class ConstructionError(ReproError):
    """Index construction was given inconsistent or unusable input."""


class QueryError(ReproError, ValueError):
    """A query was malformed (e.g. ``k`` larger than the index bound K)."""


class InvalidQueryError(QueryError):
    """A query's inputs were rejected before any work was done.

    The single validation error of every query entry point: ``k``
    outside ``[1, K]`` (or the effective bound after lazy deletions) and
    malformed preference arguments both raise this type.  It subclasses
    :class:`QueryError`, so existing handlers keep working.
    """


class QueryTimeoutError(QueryError):
    """A query exceeded its cooperative per-query deadline.

    Raised by the deadline checks in the descent and K-evaluation
    phases (see :mod:`repro.core.deadline`) and by the serving wrappers
    when the read lock cannot be acquired in time.  It subclasses
    :class:`QueryError`, so existing handlers keep working.
    """


class MaintenanceError(ReproError):
    """An incremental update could not be applied to the index."""


class LockDisciplineError(ReproError):
    """A lock was released without a matching successful acquisition.

    Raised by :class:`~repro.core.concurrent.ReadWriteLock` when
    ``release_read``/``release_write`` would underflow the ownership
    accounting — the runtime signature of the double-release bugs that
    rjilint rule RJI011 hunts statically.
    """


class StorageError(ReproError):
    """A failure in the paged-storage substrate."""


class PageOverflowError(StorageError):
    """A record did not fit into a page where it was required to."""


class CorruptPageError(StorageError):
    """A page image failed its integrity check (checksum or digest).

    Carries ``page_id`` when the corruption is attributable to one
    page; whole-file digest mismatches leave it ``None``.  Storage read
    paths must let this propagate or route it through the recovery API
    (``DiskRankedJoinIndex.verify`` / ``repair``) — rjilint rule RJI010
    enforces the discipline.
    """

    def __init__(self, message: str, *, page_id: int | None = None):
        super().__init__(message)
        self.page_id = page_id


class TornWriteError(StorageError):
    """A persisted file is incomplete (truncated header, page, or footer).

    The signature of a crash mid-write on a non-atomic path; the atomic
    temp-file + fsync + rename save makes this unreachable for whole
    files written by this library, so seeing it means the file was
    produced elsewhere or damaged after the fact.
    """


class TransientStorageError(StorageError):
    """A storage operation failed in a retryable way (injected or real).

    The retry policy of the resilient serving layer retries exactly
    this type; all other :class:`StorageError` subtypes are treated as
    persistent and trip the circuit breaker immediately.
    """


class CircuitOpenError(StorageError):
    """The circuit breaker is open and no degraded path is configured.

    Raised by the resilient serving wrapper when the disk index has
    tripped and there is no in-memory fallback to serve from; callers
    should back off and retry after the breaker's cooldown.
    """


class ServerError(ReproError):
    """A failure in the network serving layer (:mod:`repro.serve`)."""


class ServerOverloadedError(ServerError):
    """The server shed this request because its admission queue is full.

    Load shedding is explicit: an overloaded server answers with this
    typed error instead of silently dropping the request or letting it
    queue unboundedly.  Callers should back off and retry; the server's
    queue-depth series (``serve.queue_depth``) shows how close to the
    bound it is running.
    """


class ServerConnectionError(ServerError):
    """The client could not reach the server or lost the connection.

    Raised by :class:`repro.serve.Client` when the socket fails
    (refused, reset, closed mid-response) — the transport-level
    counterpart of the in-process wrappers' typed storage errors.
    """


class SchemaError(ReproError, ValueError):
    """A relational operation was applied to incompatible schemas."""
